package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestFadingStationaryStatistics(t *testing.T) {
	f := NewFading(2.0, 10e-3, rand.New(rand.NewSource(21)))
	const dt = 1e-3
	var xs []float64
	for i := 1; i <= 60000; i++ {
		xs = append(xs, f.at(0, float64(i)*dt))
	}
	// Mean ≈ 0, std ≈ σ.
	var sum, sum2 float64
	for _, x := range xs {
		sum += x
		sum2 += x * x
	}
	n := float64(len(xs))
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.15 {
		t.Fatalf("fading mean %g, want ≈0", mean)
	}
	if math.Abs(std-2.0) > 0.2 {
		t.Fatalf("fading std %g, want ≈2", std)
	}
}

func TestFadingAutocorrelation(t *testing.T) {
	f := NewFading(1.0, 10e-3, rand.New(rand.NewSource(22)))
	const dt = 1e-3
	var xs []float64
	for i := 1; i <= 80000; i++ {
		xs = append(xs, f.at(0, float64(i)*dt))
	}
	// Empirical lag-k autocorrelation should follow exp(−k·dt/τc).
	acf := func(lag int) float64 {
		var num, den float64
		for i := 0; i+lag < len(xs); i++ {
			num += xs[i] * xs[i+lag]
		}
		for _, x := range xs {
			den += x * x
		}
		return num / den
	}
	for _, lagMs := range []int{5, 10, 20} {
		got := acf(lagMs)
		want := math.Exp(-float64(lagMs) * 1e-3 / 10e-3)
		if math.Abs(got-want) > 0.1 {
			t.Fatalf("ACF at %d ms = %g, want ≈%g", lagMs, got, want)
		}
	}
}

func TestFadingPerPathIndependence(t *testing.T) {
	f := NewFading(1.0, 10e-3, rand.New(rand.NewSource(23)))
	const dt = 1e-3
	var cross, e0, e1 float64
	var prevT float64
	for i := 1; i <= 40000; i++ {
		tm := float64(i) * dt
		a := f.at(0, tm)
		b := f.at(1, tm) // same timestamp: no double-advance
		cross += a * b
		e0 += a * a
		e1 += b * b
		prevT = tm
	}
	_ = prevT
	rho := cross / math.Sqrt(e0*e1)
	if math.Abs(rho) > 0.08 {
		t.Fatalf("per-path fading correlation %g, want ≈0", rho)
	}
}

func TestFadingDeterministicPerSeed(t *testing.T) {
	a := NewFading(1.5, 10e-3, rand.New(rand.NewSource(9)))
	b := NewFading(1.5, 10e-3, rand.New(rand.NewSource(9)))
	for i := 1; i <= 100; i++ {
		tm := float64(i) * 1e-3
		if a.at(0, tm) != b.at(0, tm) || a.at(1, tm) != b.at(1, tm) {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestFadingTimeMonotoneGuard(t *testing.T) {
	f := NewFading(1.0, 10e-3, rand.New(rand.NewSource(10)))
	v1 := f.at(0, 0.010)
	// A rewound timestamp must not advance (dt clamps to 0) nor panic.
	v2 := f.at(0, 0.005)
	if v1 != v2 {
		t.Fatalf("rewound time changed the state: %g vs %g", v1, v2)
	}
}
