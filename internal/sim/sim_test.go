package sim

import (
	"math"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
)

func testScenario() *Scenario {
	e := env.ConferenceRoom(env.Band28GHz())
	gnb := env.GNBPose(true)
	ue := motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 6, Y: 3.5}, Facing: math.Pi}}
	return &Scenario{
		Env:      e,
		GNB:      gnb,
		UE:       ue,
		Duration: 0.05,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
}

// fixedScheme always reports the same slot.
type fixedScheme struct {
	name string
	slot Slot
}

func (f fixedScheme) Name() string                      { return f.name }
func (f fixedScheme) Step(float64, *channel.Model) Slot { return f.slot }

// probeScheme records the channels it is handed.
type probeScheme struct {
	models []*channel.Model
	times  []float64
}

func (p *probeScheme) Name() string { return "probe" }
func (p *probeScheme) Step(t float64, m *channel.Model) Slot {
	p.models = append(p.models, m)
	p.times = append(p.times, t)
	return Slot{SNRdB: 20, ThroughputBps: 1e9}
}

func TestValidate(t *testing.T) {
	sc := testScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *sc
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero duration should fail")
	}
	bad2 := *sc
	bad2.UE = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("nil UE should fail")
	}
}

func TestRunSlotCountAndMetrics(t *testing.T) {
	sc := testScenario()
	r := Runner{KeepSeries: true}
	out, err := r.Run(sc,
		fixedScheme{"good", Slot{SNRdB: 20, ThroughputBps: 1e9}},
		fixedScheme{"bad", Slot{SNRdB: 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	wantSlots := int(math.Ceil(0.05 / nr.Mu3().SlotDuration()))
	good := out["good"]
	if len(good.Series) != wantSlots {
		t.Fatalf("slots %d want %d", len(good.Series), wantSlots)
	}
	if good.Summary.Reliability != 1 {
		t.Fatalf("good reliability %g", good.Summary.Reliability)
	}
	if out["bad"].Summary.Reliability != 0 {
		t.Fatalf("bad reliability %g", out["bad"].Summary.Reliability)
	}
	if math.Abs(good.Summary.MeanThroughput-1e9) > 1 {
		t.Fatalf("throughput %g", good.Summary.MeanThroughput)
	}
	// Timestamps increase by one slot.
	if good.Times[1]-good.Times[0] != nr.Mu3().SlotDuration() {
		t.Fatal("slot spacing wrong")
	}
}

func TestRunNoSchemes(t *testing.T) {
	if _, err := (Runner{}).Run(testScenario()); err == nil {
		t.Fatal("no schemes should fail")
	}
}

func TestChannelAtAppliesBlockage(t *testing.T) {
	sc := testScenario()
	m0 := sc.ChannelAt(0)
	if len(m0.Paths) < 2 {
		t.Fatalf("need multipath, got %d", len(m0.Paths))
	}
	sc.Blockage = events.Schedule{{
		PathIndex: 0, Start: 0.01, Duration: 0.02, DepthDB: 25,
		RampTime: events.RampFor(25),
	}}
	during := sc.ChannelAt(0.02)
	if during.Paths[0].ExtraLossDB < 24 {
		t.Fatalf("blockage not applied: %g", during.Paths[0].ExtraLossDB)
	}
	if during.Paths[1].ExtraLossDB != 0 {
		t.Fatalf("wrong path blocked: %g", during.Paths[1].ExtraLossDB)
	}
	after := sc.ChannelAt(0.045)
	if after.Paths[0].ExtraLossDB != 0 {
		t.Fatal("blockage did not clear")
	}
}

func TestPathIdentityStableUnderMotion(t *testing.T) {
	// With a moving UE the path order may change; blockage must follow the
	// same physical path (wall identity), not the sort rank.
	sc := testScenario()
	sc.UE = motion.Translation{
		Start:  env.Vec2{X: 6, Y: 3.5},
		Vel:    env.Vec2{X: 0, Y: 0.8},
		Facing: math.Pi,
	}
	sc.Duration = 1
	// Block initial path rank 1 (the strongest reflection at t=0).
	sc.Blockage = events.Schedule{{
		PathIndex: 1, Start: 0, Duration: 1, DepthDB: 30, RampTime: 1e-4,
	}}
	m0 := sc.ChannelAt(0.001)
	via := m0.Paths[1].Via
	blockedAt0 := -1
	for i, p := range m0.Paths {
		if p.ExtraLossDB > 20 {
			blockedAt0 = i
		}
	}
	if blockedAt0 != 1 {
		t.Fatalf("initial blocked rank %d", blockedAt0)
	}
	// Later, whichever current index has that wall id must carry the loss.
	mt := sc.ChannelAt(0.9)
	for _, p := range mt.Paths {
		if p.Via == via && p.ExtraLossDB < 20 {
			t.Fatal("blockage lost its path under motion")
		}
		if p.Via != via && p.ExtraLossDB > 0 {
			t.Fatalf("blockage leaked to wall %d", p.Via)
		}
	}
}

func TestSchemesSeeClones(t *testing.T) {
	// A scheme mutating its channel snapshot must not affect others.
	sc := testScenario()
	mut := &mutatingScheme{}
	probe := &probeScheme{}
	if _, err := (Runner{}).Run(sc, mut, probe); err != nil {
		t.Fatal(err)
	}
	for _, m := range probe.models {
		for _, p := range m.Paths {
			if p.ExtraLossDB == 999 {
				t.Fatal("mutation leaked across schemes")
			}
		}
	}
}

type mutatingScheme struct{}

func (mutatingScheme) Name() string { return "mutating" }
func (mutatingScheme) Step(t float64, m *channel.Model) Slot {
	for i := range m.Paths {
		m.Paths[i].ExtraLossDB = 999
	}
	return Slot{}
}

func TestMeterIntegration(t *testing.T) {
	// Half the slots in outage → reliability 0.5, TR product = thr·rel.
	sc := testScenario()
	alt := &alternatingScheme{}
	out, err := (Runner{}).Run(sc, alt)
	if err != nil {
		t.Fatal(err)
	}
	s := out["alt"].Summary
	if math.Abs(s.Reliability-0.5) > 0.01 {
		t.Fatalf("reliability %g", s.Reliability)
	}
	if math.Abs(s.TRProduct-s.MeanThroughput*s.Reliability) > 1 {
		t.Fatal("TR product inconsistent")
	}
	_ = link.OutageThresholdDB
}

type alternatingScheme struct{ n int }

func (a *alternatingScheme) Name() string { return "alt" }
func (a *alternatingScheme) Step(t float64, m *channel.Model) Slot {
	a.n++
	if a.n%2 == 0 {
		return Slot{SNRdB: 0}
	}
	return Slot{SNRdB: 20, ThroughputBps: 1e9}
}
