package sim

import (
	"fmt"
	"math"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/link"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
)

// MultiScheme is a beam-management policy that sees one channel snapshot
// per gNB each slot — the contract for handover controllers and
// joint-transmission schemes.
type MultiScheme interface {
	Name() string
	StepMulti(t float64, ms []*channel.Model) Slot
}

// MultiScenario is a Scenario with several gNBs sharing one environment and
// UE trace. Blockage event path indices address the concatenation of the
// per-gNB initial path lists (gNB 0's paths first).
type MultiScenario struct {
	Env      *env.Environment
	GNBs     []env.Pose
	UE       motion.Trace
	Blockage events.Schedule
	Duration float64
	Num      nr.Numerology
	TxArray  *antenna.ULA
	MaxPaths int
	Fading   *Fading

	subs []*Scenario
	snap multiSnapshot
}

// multiSnapshot fingerprints the configuration fields the lazily-built
// per-gNB sub-scenarios bake in, so a mutation after the first ChannelsAt
// cannot silently keep serving channels from the stale cache. The UE trace
// is excluded: traces are interface values whose dynamic types need not be
// comparable (changing UE mid-run also requires Reset, it just cannot be
// detected here).
type multiSnapshot struct {
	env      *env.Environment
	tx       *antenna.ULA
	fading   *Fading
	duration float64
	num      nr.Numerology
	maxPaths int
	gnbs     []env.Pose
	blockage events.Schedule
}

// snapshot captures the current configuration fingerprint.
func (sc *MultiScenario) snapshot() multiSnapshot {
	return multiSnapshot{
		env: sc.Env, tx: sc.TxArray, fading: sc.Fading,
		duration: sc.Duration, num: sc.Num, maxPaths: sc.MaxPaths,
		gnbs:     append([]env.Pose(nil), sc.GNBs...),
		blockage: append(events.Schedule(nil), sc.Blockage...),
	}
}

// stale reports whether the configuration has drifted from the cached
// sub-scenarios' snapshot.
func (sc *MultiScenario) stale() bool {
	s := sc.snap
	if sc.Env != s.env || sc.TxArray != s.tx || sc.Fading != s.fading ||
		sc.Duration != s.duration || sc.Num != s.num || sc.MaxPaths != s.maxPaths ||
		len(sc.GNBs) != len(s.gnbs) || len(sc.Blockage) != len(s.blockage) {
		return true
	}
	for i, p := range sc.GNBs {
		if p != s.gnbs[i] {
			return true
		}
	}
	for i, e := range sc.Blockage {
		if e != s.blockage[i] {
			return true
		}
	}
	return false
}

// Reset drops the cached per-gNB sub-scenarios so the next ChannelsAt
// rebuilds them from the current configuration. Call it after mutating any
// MultiScenario field once channels have been served; without it,
// ChannelsAt panics on a detected mutation rather than serving channels
// from the stale cache.
func (sc *MultiScenario) Reset() {
	sc.subs = nil
	sc.snap = multiSnapshot{}
}

// Validate checks the scenario.
func (sc *MultiScenario) Validate() error {
	if sc.Env == nil || sc.UE == nil || sc.TxArray == nil {
		return fmt.Errorf("sim: multi-scenario missing env/UE/array")
	}
	if len(sc.GNBs) == 0 {
		return fmt.Errorf("sim: no gNBs")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %g", sc.Duration)
	}
	return sc.Num.Validate()
}

// ChannelsAt returns one channel snapshot per gNB at time t. The per-gNB
// sub-scenarios are built once, on first call; mutating the MultiScenario
// afterwards without calling Reset panics (stale-cache guard).
func (sc *MultiScenario) ChannelsAt(t float64) []*channel.Model {
	if sc.subs != nil && sc.stale() {
		panic("sim: MultiScenario mutated after ChannelsAt built its sub-scenarios; call Reset() first")
	}
	if sc.subs == nil {
		sc.snap = sc.snapshot()
		sc.subs = make([]*Scenario, len(sc.GNBs))
		for g, pose := range sc.GNBs {
			sub := &Scenario{
				Env: sc.Env, GNB: pose, UE: sc.UE,
				Duration: sc.Duration, Num: sc.Num,
				TxArray: sc.TxArray, MaxPaths: sc.MaxPaths,
				Fading: sc.Fading,
			}
			// Shift this gNB's blockage events into its local path index
			// space: event PathIndex g*MaxPaths+k addresses gNB g's path k.
			lo, hi := g*sc.MaxPaths, (g+1)*sc.MaxPaths
			for _, e := range sc.Blockage {
				if e.AllPaths {
					sub.Blockage = append(sub.Blockage, e)
					continue
				}
				if e.PathIndex >= lo && e.PathIndex < hi {
					e.PathIndex -= lo
					sub.Blockage = append(sub.Blockage, e)
				}
			}
			sc.subs[g] = sub
		}
	}
	out := make([]*channel.Model, len(sc.subs))
	for g, sub := range sc.subs {
		out[g] = sub.ChannelAt(t)
	}
	return out
}

// RunMulti replays the multi-gNB scenario against each scheme.
func (r Runner) RunMulti(sc *MultiScenario, schemes ...MultiScheme) (map[string]Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("sim: no schemes")
	}
	if sc.MaxPaths <= 0 {
		return nil, fmt.Errorf("sim: MultiScenario requires MaxPaths > 0 (blockage addressing)")
	}
	slotDur := sc.Num.SlotDuration()
	nSlots := int(math.Ceil((sc.Duration + r.Warmup) / slotDur))
	meters := make([]*link.Meter, len(schemes))
	results := make([]Result, len(schemes))
	for i := range schemes {
		meters[i] = link.NewMeter()
	}
	for s := 0; s < nSlots; s++ {
		t := float64(s) * slotDur
		ms := sc.ChannelsAt(t)
		for i, scheme := range schemes {
			clones := make([]*channel.Model, len(ms))
			for g := range ms {
				clones[g] = ms[g].Clone()
			}
			slot := scheme.StepMulti(t, clones)
			if t < r.Warmup {
				continue
			}
			meters[i].Record(slot.SNRdB, slot.Training, slot.ThroughputBps)
			if r.KeepSeries {
				results[i].Series = append(results[i].Series, slot)
				results[i].Times = append(results[i].Times, t)
			}
		}
	}
	out := make(map[string]Result, len(schemes))
	for i, scheme := range schemes {
		results[i].Summary = meters[i].Summarize()
		out[scheme.Name()] = results[i]
	}
	return out, nil
}

// Pinned adapts a single-gNB Scheme to MultiScheme by pinning it to one
// gNB — the no-handover baseline.
type Pinned struct {
	Scheme Scheme
	GNB    int
}

// Name implements MultiScheme.
func (p Pinned) Name() string { return p.Scheme.Name() }

// StepMulti implements MultiScheme.
func (p Pinned) StepMulti(t float64, ms []*channel.Model) Slot {
	return p.Scheme.Step(t, ms[p.GNB])
}
