package sim

import (
	"math"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
)

func multiScenario() *MultiScenario {
	e := env.NewEnvironment(env.Band28GHz(),
		env.Wall{Seg: env.Segment{A: env.Vec2{X: -5, Y: 4}, B: env.Vec2{X: 25, Y: 4}}, Mat: env.Metal},
	)
	e.FrontHalfOnly = false
	return &MultiScenario{
		Env: e,
		GNBs: []env.Pose{
			{Pos: env.Vec2{X: 0, Y: 0}, Facing: 0},
			{Pos: env.Vec2{X: 20, Y: 0}, Facing: math.Pi},
		},
		UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 8, Y: 0.5}, Facing: 0}},
		Duration: 0.05,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
}

func TestChannelsAtPerGNB(t *testing.T) {
	sc := multiScenario()
	ms := sc.ChannelsAt(0)
	if len(ms) != 2 {
		t.Fatalf("channels %d", len(ms))
	}
	// Different gNB positions → different LOS delays.
	d0 := ms[0].Paths[0].Delay
	d1 := ms[1].Paths[0].Delay
	if math.Abs(d0-d1) < 1e-12 {
		t.Fatal("both gNBs produced identical delays")
	}
	// gNB 0 at 8 m, gNB 1 at 12 m.
	if d0 >= d1 {
		t.Fatalf("gNB0 delay %g should be shorter than gNB1 %g", d0, d1)
	}
}

// TestMultiBlockageAddressing: event PathIndex g·MaxPaths+k must hit gNB
// g's path k only.
func TestMultiBlockageAddressing(t *testing.T) {
	sc := multiScenario()
	sc.Blockage = events.Schedule{
		{PathIndex: 0, Start: 0, Duration: 1, DepthDB: 30, RampTime: 1e-4},                 // gNB 0, path 0
		{PathIndex: sc.MaxPaths + 1, Start: 0, Duration: 1, DepthDB: 20, RampTime: 1e-4},   // gNB 1, path 1
		{PathIndex: 2*sc.MaxPaths + 2, Start: 0, Duration: 1, DepthDB: 10, RampTime: 1e-4}, // out of range: nobody
	}
	ms := sc.ChannelsAt(0.01)
	if ms[0].Paths[0].ExtraLossDB < 29 {
		t.Fatalf("gNB0 path0 not blocked: %g", ms[0].Paths[0].ExtraLossDB)
	}
	for k := 1; k < len(ms[0].Paths); k++ {
		if ms[0].Paths[k].ExtraLossDB != 0 {
			t.Fatalf("gNB0 path%d wrongly blocked", k)
		}
	}
	if len(ms[1].Paths) > 1 && ms[1].Paths[1].ExtraLossDB < 19 {
		t.Fatalf("gNB1 path1 not blocked: %g", ms[1].Paths[1].ExtraLossDB)
	}
	if ms[1].Paths[0].ExtraLossDB != 0 {
		t.Fatal("gNB1 path0 wrongly blocked")
	}
}

// TestMultiAllPathsEventHitsEveryGNB: an AllPaths event is a body block —
// it occludes every path of every cell.
func TestMultiAllPathsEventHitsEveryGNB(t *testing.T) {
	sc := multiScenario()
	sc.Blockage = events.Schedule{{AllPaths: true, Start: 0, Duration: 1, DepthDB: 40, RampTime: 1e-4}}
	ms := sc.ChannelsAt(0.01)
	for g := range ms {
		for k := range ms[g].Paths {
			if ms[g].Paths[k].ExtraLossDB < 39 {
				t.Fatalf("gNB%d path%d not body-blocked: %g", g, k, ms[g].Paths[k].ExtraLossDB)
			}
		}
	}
}

// recorder captures the channels handed to a MultiScheme.
type recorder struct {
	calls int
}

func (r *recorder) Name() string { return "rec" }
func (r *recorder) StepMulti(t float64, ms []*channel.Model) Slot {
	r.calls++
	if len(ms) != 2 {
		panic("wrong gNB count")
	}
	return Slot{SNRdB: 20, ThroughputBps: 1e9}
}

func TestRunMultiDrivesScheme(t *testing.T) {
	sc := multiScenario()
	r := &recorder{}
	out, err := (Runner{}).RunMulti(sc, r)
	if err != nil {
		t.Fatal(err)
	}
	wantSlots := int(math.Ceil(0.05 / nr.Mu3().SlotDuration()))
	if r.calls != wantSlots {
		t.Fatalf("scheme stepped %d times, want %d", r.calls, wantSlots)
	}
	if out["rec"].Summary.Reliability != 1 {
		t.Fatalf("reliability %g", out["rec"].Summary.Reliability)
	}
}

// TestMultiScenarioStaleCacheGuard: mutating a MultiScenario after its
// sub-scenarios are cached must trip the guard instead of silently serving
// channels built from the old configuration; Reset() rebuilds legitimately.
func TestMultiScenarioStaleCacheGuard(t *testing.T) {
	sc := multiScenario()
	sc.ChannelsAt(0) // build the per-gNB cache

	// Mutation without Reset: panic.
	sc.Blockage = events.Schedule{{PathIndex: 0, Start: 0, Duration: 1, DepthDB: 30, RampTime: 1e-4}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ChannelsAt served channels from a stale cache without panicking")
			}
		}()
		sc.ChannelsAt(0.01)
	}()

	// Reset then re-query: the new blockage takes effect.
	sc.Reset()
	ms := sc.ChannelsAt(0.01)
	if ms[0].Paths[0].ExtraLossDB < 29 {
		t.Fatalf("post-Reset blockage not applied: %g dB", ms[0].Paths[0].ExtraLossDB)
	}

	// Mutating the gNB list is likewise guarded.
	sc2 := multiScenario()
	sc2.ChannelsAt(0)
	sc2.GNBs[1].Pos.X = 30
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("gNB pose mutation not detected")
			}
		}()
		sc2.ChannelsAt(0.01)
	}()
	sc2.Reset()
	if got := len(sc2.ChannelsAt(0)); got != 2 {
		t.Fatalf("post-Reset channels %d", got)
	}

	// An unmutated scenario keeps working across calls (no false positives).
	sc3 := multiScenario()
	for i := 0; i < 3; i++ {
		sc3.ChannelsAt(float64(i) * 1e-3)
	}
}
