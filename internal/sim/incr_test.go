package sim

import (
	"fmt"
	"reflect"
	"testing"

	"mmreliable/internal/channel"
	"mmreliable/internal/env"
)

// modelState extracts the comparable channel content of a model (everything
// ChannelInto is contracted to produce; the cache and stamp are
// implementation detail).
type modelState struct {
	Band      env.Band
	TxN, RxN  int
	RxWeights string
	Paths     []channel.PathState
}

func stateOf(m *channel.Model) modelState {
	s := modelState{Band: m.Band, Paths: append([]channel.PathState(nil), m.Paths...)}
	if m.Tx != nil {
		s.TxN = m.Tx.N
	}
	if m.Rx != nil {
		s.RxN = m.Rx.N
	}
	s.RxWeights = fmt.Sprint(m.RxWeights)
	return s
}

// TestChannelIntoQuiescentSkipBitIdentical drives the persistent-model
// ChannelInto slot loop (where the incremental engine's quiescent skip and
// trace cache live) against a twin scenario evaluated with a fresh model
// every slot (a fresh model can never be skipped: it is not the last model
// written). Every slot's channel content must match bit for bit, across
// static, blocked and mobile conditions. With MMR_INCREMENTAL=off both
// sides take the full-recompute path and the test pins the oracle against
// itself.
func TestChannelIntoQuiescentSkipBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Scenario
	}{
		{"static", func() *Scenario { sc := StaticIndoor(3); sc.Fading = nil; return sc }},
		{"walking-blocker", func() *Scenario { sc := WalkingBlockerIndoor(3); sc.Fading = nil; return sc }},
		{"mobile-blocked", func() *Scenario { sc := IndoorMobileBlocked(3); sc.Fading = nil; return sc }},
		{"mobile-indexed", func() *Scenario {
			sc := IndoorMobileBlocked(5)
			sc.Fading = nil
			sc.Env.MaxRangeM = 40
			sc.Env.BuildIndex() // the regime where TraceAppendCached engages
			return sc
		}},
		{"fading", func() *Scenario { return WalkingBlockerIndoor(3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inc, ref := tc.build(), tc.build()
			m := &channel.Model{Reuse: true}
			slotDur := inc.Num.SlotDuration()
			for s := 0; s < 400; s++ {
				tm := float64(s) * slotDur
				inc.ChannelInto(tm, m)
				want := stateOf(ref.ChannelAt(tm))
				if got := stateOf(m); !reflect.DeepEqual(got, want) {
					t.Fatalf("slot %d (t=%.4f): persistent model diverged\ngot:  %+v\nwant: %+v",
						s, tm, got, want)
				}
			}
		})
	}
}

// TestStableIDMapBounded is the long-run memory regression test for the
// stable path-id map: streaming far more distinct reflecting-wall
// identities through pathIDsFor than maxStableIDs must leave the map (and
// the eviction FIFO's backing array) bounded, keep the id assignment
// deterministic, and never evict the t = 0 ranks that blockage schedules
// address.
func TestStableIDMapBounded(t *testing.T) {
	run := func() (*Scenario, []int) {
		sc := StaticIndoor(1)
		sc.Fading = nil
		var got []int
		for i := 0; i < 3*maxStableIDs; i++ {
			paths := []env.Path{{Via: 100 + i, Via2: -1, LossDB: 60}}
			got = append(got, sc.pathIDsFor(paths)[0])
		}
		return sc, got
	}
	sc, ids1 := run()
	if n := len(sc.initialVias); n > maxStableIDs {
		t.Fatalf("initialVias grew to %d entries, cap is %d", n, maxStableIDs)
	}
	if live := len(sc.viaOrder) - sc.viaHead; live > maxStableIDs {
		t.Fatalf("eviction FIFO holds %d live entries, cap is %d", live, maxStableIDs)
	}
	// The FIFO backing compacts every maxStableIDs evictions; with append's
	// growth factor it peaks below 3× the cap regardless of run length.
	if c := cap(sc.viaOrder); c > 3*maxStableIDs {
		t.Fatalf("eviction FIFO backing grew to %d, want bounded near %d", c, maxStableIDs)
	}
	// Initial ranks are pinned: the t = 0 paths must still resolve to their
	// original ranks after the churn.
	init := sc.Env.Trace(sc.GNB, sc.UE.At(0))
	if sc.MaxPaths > 0 && len(init) > sc.MaxPaths {
		init = init[:sc.MaxPaths]
	}
	ids := sc.pathIDsFor(init)
	for rank := range init {
		if ids[rank] != rank {
			t.Fatalf("initial path rank %d evicted: resolved to id %d", rank, ids[rank])
		}
	}
	// Determinism: a second identical run assigns identical ids.
	_, ids2 := run()
	if !reflect.DeepEqual(ids1, ids2) {
		t.Fatal("stable-id assignment is not deterministic under eviction")
	}
}
