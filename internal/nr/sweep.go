package nr

import (
	"math"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
)

// SweepResult is the outcome of an SSB beam-training sweep.
type SweepResult struct {
	RSS      []float64 // received signal strength per codebook entry
	Peaks    []int     // selected viable-beam indices, strongest first
	AirTime  float64   // total signaling time consumed (s)
	NumProbe int       // probes issued
}

// Angles returns the nominal angle of each selected peak.
func (r SweepResult) Angles(cb *antenna.Codebook) []float64 {
	return r.AnglesInto(cb, make([]float64, 0, len(r.Peaks)))
}

// AnglesInto appends the nominal angle of each selected peak to dst and
// returns it — the allocation-free form of Angles.
func (r SweepResult) AnglesInto(cb *antenna.Codebook, dst []float64) []float64 {
	for _, p := range r.Peaks {
		dst = append(dst, cb.Angles[p])
	}
	return dst
}

// Sweep performs an exhaustive SSB sweep over the codebook, measuring RSS
// with each beam, and selects up to maxBeams viable directions: local RSS
// peaks separated by at least minSepIdx codebook entries and within
// dynRangeDB of the strongest. This is the paper's "any standard beam
// training" building block (Fig. 2).
func Sweep(s *Sounder, m *channel.Model, cb *antenna.Codebook, maxBeams, minSepIdx int, dynRangeDB float64) SweepResult {
	var sc SweepScratch
	return SweepInto(s, m, cb, maxBeams, minSepIdx, dynRangeDB, &sc)
}

// SweepScratch holds the reusable storage one SweepInto call needs: the RSS
// vector (which the returned SweepResult references — valid until the next
// SweepInto with the same scratch), the peak-selection mask and index list,
// and the probe CSI landing buffer. The zero value is ready to use; buffers
// grow on first use and are retained, so a manager that re-trains
// periodically sweeps without touching the allocator.
type SweepScratch struct {
	rss   []float64
	mask  []bool
	peaks []int
	csi   cmx.Vector
}

// SweepInto is Sweep drawing every buffer from sc. Probing order, peak
// selection, and result ordering are identical to Sweep; only the storage
// differs, so the two are interchangeable under the determinism contract.
func SweepInto(s *Sounder, m *channel.Model, cb *antenna.Codebook, maxBeams, minSepIdx int, dynRangeDB float64, sc *SweepScratch) SweepResult {
	n := cb.Len()
	if cap(sc.rss) < n {
		sc.rss = make([]float64, n)
	}
	if cap(sc.csi) < s.NumSC {
		sc.csi = make(cmx.Vector, s.NumSC)
	}
	res := SweepResult{RSS: sc.rss[:n]}
	csi := sc.csi[:s.NumSC]
	for i, w := range cb.Weights {
		res.RSS[i] = RSS(s.ProbeInto(m, w, csi))
		res.NumProbe++
	}
	res.AirTime = float64(res.NumProbe) * s.Num.SSBDuration()
	res.Peaks = selectPeaksInto(sc, res.RSS, maxBeams, minSepIdx, dynRangeDB)
	return res
}

// SelectPeaks picks up to maxBeams viable-beam indices from an RSS sweep by
// successive masked selection (matching-pursuit style): take the global
// maximum, mask out its angular neighborhood (± minSep−1 indices), take the
// next maximum, and so on. Candidates more than dynRangeDB below the
// strongest are rejected. This finds a second path even when wide scanning
// beams merge two nearby paths into a single hump with no second local
// maximum. Results are ordered strongest first.
func SelectPeaks(rss []float64, maxBeams, minSep int, dynRangeDB float64) []int {
	var sc SweepScratch
	return selectPeaksInto(&sc, rss, maxBeams, minSep, dynRangeDB)
}

// selectPeaksInto is SelectPeaks working out of sc's mask/peak storage.
// The greedy selection yields peaks in non-increasing RSS order already, so
// the final stable insertion sort is a no-op guard that matches
// sort.Slice's behavior on the tiny (≤ maxBeams) slices involved.
func selectPeaksInto(sc *SweepScratch, rss []float64, maxBeams, minSep int, dynRangeDB float64) []int {
	if len(rss) == 0 || maxBeams <= 0 {
		return nil
	}
	if minSep < 1 {
		minSep = 1
	}
	if cap(sc.mask) < len(rss) {
		sc.mask = make([]bool, len(rss))
	}
	masked := sc.mask[:len(rss)]
	for i := range masked {
		masked[i] = false
	}
	peaks := sc.peaks[:0]
	floor := math.Inf(1)
	for len(peaks) < maxBeams {
		best, bestVal := -1, 0.0
		for i, v := range rss {
			if !masked[i] && (best == -1 || v > bestVal) {
				best, bestVal = i, v
			}
		}
		if best == -1 {
			break
		}
		if len(peaks) == 0 {
			floor = bestVal * math.Pow(10, -dynRangeDB/10)
		} else if bestVal < floor {
			break
		}
		peaks = append(peaks, best)
		for i := best - (minSep - 1); i <= best+(minSep-1); i++ {
			if i >= 0 && i < len(rss) {
				masked[i] = true
			}
		}
	}
	for i := 1; i < len(peaks); i++ {
		for j := i; j > 0 && rss[peaks[j]] > rss[peaks[j-1]]; j-- {
			peaks[j], peaks[j-1] = peaks[j-1], peaks[j]
		}
	}
	sc.peaks = peaks[:0]
	return peaks
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// OverheadModel captures the §6.2 probing-overhead accounting (Fig. 18d).
type OverheadModel struct {
	Num Numerology
}

// NRTrainingTime returns the air time of a traditional 5G NR beam
// refinement for an n-antenna array using the best known (logarithmic)
// scanning method: 2·log2(n) SSB probes of 0.5 ms each — 3 ms at 8
// antennas, 6 ms at 64.
func (o OverheadModel) NRTrainingTime(nAntennas int) float64 {
	if nAntennas < 2 {
		return 0
	}
	steps := 2 * math.Log2(float64(nAntennas))
	return steps * o.Num.SSBDuration()
}

// ExhaustiveTrainingTime returns the air time of a full codebook sweep.
func (o OverheadModel) ExhaustiveTrainingTime(numBeams int) float64 {
	return float64(numBeams) * o.Num.SSBDuration()
}

// MaintenanceProbes returns the number of CSI-RS probes one mmReliable
// refinement round needs for a K-beam multi-beam: 2(K−1) constructive-
// combining probes plus one motion-disambiguation probe (§4.2) — 3 probes
// for 2 beams, 5 for 3 beams, independent of array size.
func (o OverheadModel) MaintenanceProbes(kBeams int) int {
	if kBeams < 2 {
		return 1
	}
	return 2*(kBeams-1) + 1
}

// MaintenanceTime returns the air time of one mmReliable refinement round
// for a K-beam multi-beam: ≈0.4 ms for 2 beams, ≈0.6 ms for 3 (Fig. 18d).
func (o OverheadModel) MaintenanceTime(kBeams int) float64 {
	return float64(o.MaintenanceProbes(kBeams)) * o.Num.CSIRSDuration()
}
