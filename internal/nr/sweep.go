package nr

import (
	"math"
	"sort"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
)

// SweepResult is the outcome of an SSB beam-training sweep.
type SweepResult struct {
	RSS      []float64 // received signal strength per codebook entry
	Peaks    []int     // selected viable-beam indices, strongest first
	AirTime  float64   // total signaling time consumed (s)
	NumProbe int       // probes issued
}

// Angles returns the nominal angle of each selected peak.
func (r SweepResult) Angles(cb *antenna.Codebook) []float64 {
	out := make([]float64, len(r.Peaks))
	for i, p := range r.Peaks {
		out[i] = cb.Angles[p]
	}
	return out
}

// Sweep performs an exhaustive SSB sweep over the codebook, measuring RSS
// with each beam, and selects up to maxBeams viable directions: local RSS
// peaks separated by at least minSepIdx codebook entries and within
// dynRangeDB of the strongest. This is the paper's "any standard beam
// training" building block (Fig. 2).
func Sweep(s *Sounder, m *channel.Model, cb *antenna.Codebook, maxBeams, minSepIdx int, dynRangeDB float64) SweepResult {
	res := SweepResult{RSS: make([]float64, cb.Len())}
	// One CSI buffer serves the whole sweep: only the scalar RSS of each
	// probe survives the iteration.
	csi := make(cmx.Vector, s.NumSC)
	for i, w := range cb.Weights {
		res.RSS[i] = RSS(s.ProbeInto(m, w, csi))
		res.NumProbe++
	}
	res.AirTime = float64(res.NumProbe) * s.Num.SSBDuration()
	res.Peaks = SelectPeaks(res.RSS, maxBeams, minSepIdx, dynRangeDB)
	return res
}

// SelectPeaks picks up to maxBeams viable-beam indices from an RSS sweep by
// successive masked selection (matching-pursuit style): take the global
// maximum, mask out its angular neighborhood (± minSep−1 indices), take the
// next maximum, and so on. Candidates more than dynRangeDB below the
// strongest are rejected. This finds a second path even when wide scanning
// beams merge two nearby paths into a single hump with no second local
// maximum. Results are ordered strongest first.
func SelectPeaks(rss []float64, maxBeams, minSep int, dynRangeDB float64) []int {
	if len(rss) == 0 || maxBeams <= 0 {
		return nil
	}
	if minSep < 1 {
		minSep = 1
	}
	masked := make([]bool, len(rss))
	var peaks []int
	floor := math.Inf(1)
	for len(peaks) < maxBeams {
		best, bestVal := -1, 0.0
		for i, v := range rss {
			if !masked[i] && (best == -1 || v > bestVal) {
				best, bestVal = i, v
			}
		}
		if best == -1 {
			break
		}
		if len(peaks) == 0 {
			floor = bestVal * math.Pow(10, -dynRangeDB/10)
		} else if bestVal < floor {
			break
		}
		peaks = append(peaks, best)
		for i := best - (minSep - 1); i <= best+(minSep-1); i++ {
			if i >= 0 && i < len(rss) {
				masked[i] = true
			}
		}
	}
	sort.Slice(peaks, func(a, b int) bool { return rss[peaks[a]] > rss[peaks[b]] })
	return peaks
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// OverheadModel captures the §6.2 probing-overhead accounting (Fig. 18d).
type OverheadModel struct {
	Num Numerology
}

// NRTrainingTime returns the air time of a traditional 5G NR beam
// refinement for an n-antenna array using the best known (logarithmic)
// scanning method: 2·log2(n) SSB probes of 0.5 ms each — 3 ms at 8
// antennas, 6 ms at 64.
func (o OverheadModel) NRTrainingTime(nAntennas int) float64 {
	if nAntennas < 2 {
		return 0
	}
	steps := 2 * math.Log2(float64(nAntennas))
	return steps * o.Num.SSBDuration()
}

// ExhaustiveTrainingTime returns the air time of a full codebook sweep.
func (o OverheadModel) ExhaustiveTrainingTime(numBeams int) float64 {
	return float64(numBeams) * o.Num.SSBDuration()
}

// MaintenanceProbes returns the number of CSI-RS probes one mmReliable
// refinement round needs for a K-beam multi-beam: 2(K−1) constructive-
// combining probes plus one motion-disambiguation probe (§4.2) — 3 probes
// for 2 beams, 5 for 3 beams, independent of array size.
func (o OverheadModel) MaintenanceProbes(kBeams int) int {
	if kBeams < 2 {
		return 1
	}
	return 2*(kBeams-1) + 1
}

// MaintenanceTime returns the air time of one mmReliable refinement round
// for a K-beam multi-beam: ≈0.4 ms for 2 beams, ≈0.6 ms for 3 (Fig. 18d).
func (o OverheadModel) MaintenanceTime(kBeams int) float64 {
	return float64(o.MaintenanceProbes(kBeams)) * o.Num.CSIRSDuration()
}
