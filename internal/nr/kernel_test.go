package nr

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

// TestDelayKernelEqualsIFFT pins the closed-form Dirichlet kernel to the
// brute-force IFFT it replaced, across delays spanning fractional samples,
// negative values, and multiple wraps.
func TestDelayKernelEqualsIFFT(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	offs := s.SubcarrierOffsets()
	for _, tauNs := range []float64{0, 0.3, 2.5, 7.31, 40, -3.2, 200} {
		tau := tauNs * 1e-9
		got := s.DelayKernel(tau)
		want := make(cmx.Vector, s.NumSC)
		for k, f := range offs {
			want[k] = cmplx.Exp(complex(0, -2*math.Pi*f*tau))
		}
		if err := dsp.IFFT(want); err != nil {
			t.Fatal(err)
		}
		if d := got.Sub(want).Norm(); d > 1e-9 {
			t.Fatalf("tau=%g ns: closed form differs from IFFT by %g", tauNs, d)
		}
	}
}

// TestDelayKernelUnitEnergy: each kernel column has unit energy (Parseval
// on a unit-magnitude spectrum), so dictionary columns are comparable.
func TestDelayKernelUnitEnergy(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	want := 1.0
	for _, tauNs := range []float64{0, 1.1, 13.7} {
		e := s.DelayKernel(tauNs * 1e-9).Norm2()
		if math.Abs(e-want) > 1e-12 {
			t.Fatalf("tau=%g ns: kernel energy %g want %g", tauNs, e, want)
		}
	}
}

// TestDelayKernelShiftInvariantGram: the inner product of two kernels
// depends only on their delay difference — the invariance the
// super-resolution alignment search relies on to hoist the Gram matrix.
func TestDelayKernelShiftInvariantGram(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		d1 := rng.Float64() * 20e-9
		d2 := rng.Float64() * 20e-9
		shift := (rng.Float64() - 0.5) * 10e-9
		a := s.DelayKernel(d1).Hdot(s.DelayKernel(d2))
		b := s.DelayKernel(d1 + shift).Hdot(s.DelayKernel(d2 + shift))
		if cmplx.Abs(a-b) > 1e-9 {
			t.Fatalf("Gram not shift-invariant: %v vs %v (shift %g ns)", a, b, shift*1e9)
		}
	}
}

// TestProbeLinearity: the sounder is linear in the channel — the CSI of a
// superposition equals the superposition of CSIs (noiseless).
func TestProbeLinearity(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	m := testChannel()
	w1 := m.Tx.SingleBeam(0)
	w2 := m.Tx.SingleBeam(0.5)
	sum := w1.Add(w2)
	c1 := s.Probe(m, w1)
	c2 := s.Probe(m, w2)
	cs := s.Probe(m, sum)
	if d := cs.Sub(c1.Add(c2)).Norm(); d > 1e-9*cs.Norm() {
		t.Fatalf("probe not linear: %g", d)
	}
}
