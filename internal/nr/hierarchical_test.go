package nr

import (
	"math"
	"testing"

	"mmreliable/internal/dsp"
)

func TestHierConfigValidate(t *testing.T) {
	if err := DefaultHierConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultHierConfig()
	bad.Branch = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("branch 1 should fail")
	}
	bad = DefaultHierConfig()
	bad.ScanMax = bad.ScanMin
	if err := bad.Validate(); err == nil {
		t.Fatal("empty range should fail")
	}
}

func TestHierSweepFindsLOS(t *testing.T) {
	s := testSounder(t, 1e-6, DefaultImpairments())
	m := testChannel() // LOS at 0°, reflection at 30° (−5 dB)
	res, err := HierSweep(s, m, m.Tx, DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Angles) == 0 {
		t.Fatal("no beams found")
	}
	if math.Abs(dsp.Deg(res.Angles[0])) > 8 {
		t.Fatalf("strongest beam at %g°, want ≈0", dsp.Deg(res.Angles[0]))
	}
	// Strongest-first ordering.
	for i := 1; i < len(res.RSS); i++ {
		if res.RSS[i] > res.RSS[i-1] {
			t.Fatal("results not ordered by RSS")
		}
	}
}

func TestHierSweepFindsSecondPath(t *testing.T) {
	s := testSounder(t, 1e-6, DefaultImpairments())
	m := testChannel()
	cfg := DefaultHierConfig()
	res, err := HierSweep(s, m, m.Tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Angles) < 2 {
		t.Fatalf("found %d beams, want the 30° reflection too", len(res.Angles))
	}
	found := false
	for _, a := range res.Angles {
		if math.Abs(dsp.Deg(a)-30) < 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reflection not found; angles: %v", degrees(res.Angles))
	}
}

func TestHierSweepCheaperThanExhaustive(t *testing.T) {
	s := testSounder(t, 1e-6, DefaultImpairments())
	m := testChannel()
	cfg := DefaultHierConfig()
	res, err := HierSweep(s, m, m.Tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumProbe >= cfg.NarrowBeams {
		t.Fatalf("hierarchical used %d probes, exhaustive needs %d", res.NumProbe, cfg.NarrowBeams)
	}
	if res.NumProbe != HierProbeCount(cfg) {
		t.Fatalf("probe count %d != predicted %d", res.NumProbe, HierProbeCount(cfg))
	}
	if math.Abs(res.AirTime-float64(res.NumProbe)*s.Num.SSBDuration()) > 1e-12 {
		t.Fatalf("air time %g", res.AirTime)
	}
}

func TestHierSweepDynamicRange(t *testing.T) {
	// With an extremely tight dynamic range, only the strongest survivor
	// remains.
	s := testSounder(t, 1e-6, DefaultImpairments())
	m := testChannel()
	cfg := DefaultHierConfig()
	cfg.DynRangeDB = 0.5
	res, err := HierSweep(s, m, m.Tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Angles) != 1 {
		t.Fatalf("dyn-range filter kept %d beams", len(res.Angles))
	}
}

func degrees(rads []float64) []float64 {
	out := make([]float64, len(rads))
	for i, r := range rads {
		out[i] = dsp.Deg(r)
	}
	return out
}
