package nr

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

// TestProbeIntoMatchesProbe pins the scratch-reusing probe to the allocating
// one bit for bit, including the RNG draw order: two sounders seeded
// identically, one probing through Probe and one through ProbeInto, must
// produce identical CSI estimates and identical subsequent random draws.
func TestProbeIntoMatchesProbe(t *testing.T) {
	m := testChannel()
	w := m.Tx.SingleBeam(0.1)
	s1, err := NewSounder(Mu3(), 400e6, 64, 0.05, DefaultImpairments(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSounder(Mu3(), 400e6, 64, 0.05, DefaultImpairments(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make(cmx.Vector, 64)
	for it := 0; it < 5; it++ {
		a := s1.Probe(m.Clone(), w)
		b := s2.ProbeInto(m.Clone(), w, buf)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("iteration %d: Probe and ProbeInto diverge at subcarrier %d: %v vs %v", it, k, a[k], b[k])
			}
		}
	}
	if s1.Probes != s2.Probes {
		t.Fatalf("probe counters diverge: %d vs %d", s1.Probes, s2.Probes)
	}
}

// TestProbeFromSplitMatchesProbeInto pins the batched probe entry point:
// feeding ProbeFromSplit a planar channel response produced under the
// reference kernel must reproduce ProbeInto bit for bit — the same OFDM
// round trip, the same noise/CFO/SFO draws in the same order — and under
// every registered kernel the results must agree to ≤1e-12. This is the
// CFO/SFO leg of the kernel-equivalence contract: the impairment stream
// rides on whichever wideband evaluation produced h.
func TestProbeFromSplitMatchesProbeInto(t *testing.T) {
	for _, kern := range dsp.Kernels() {
		t.Run(kern.Name(), func(t *testing.T) {
			prev := dsp.SetKernel(kern)
			defer dsp.SetKernel(prev)
			m := testChannel()
			w := m.Tx.SingleBeam(0.1)
			mk := func(seed int64) *Sounder {
				s, err := NewSounder(Mu3(), 400e6, 64, 0.05, DefaultImpairments(), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			s1, s2 := mk(42), mk(42)
			buf := make(cmx.Vector, 64)
			buf2 := make(cmx.Vector, 64)
			re := make([]float64, 64)
			im := make([]float64, 64)
			exact := kern == dsp.Reference // planar h differs from the interleaved h by ~ulp
			for it := 0; it < 5; it++ {
				mm := m.Clone()
				mm.Paths[0].ExtraLossDB = float64(it) * 6 // blockage sweep
				a := s1.ProbeInto(mm.Clone(), w, buf)
				mm.EffectiveWidebandSplitInto(w, s2.SubcarrierOffsets(), re, im)
				b := s2.ProbeFromSplit(re, im, buf2)
				var scale float64
				for k := range a {
					if s := cmplx.Abs(a[k]); s > scale {
						scale = s
					}
				}
				for k := range a {
					if exact {
						if a[k] != b[k] {
							t.Fatalf("%s it %d sc %d: ProbeInto %v vs ProbeFromSplit %v",
								kern.Name(), it, k, a[k], b[k])
						}
					} else if cmplx.Abs(a[k]-b[k]) > 1e-12*scale {
						t.Fatalf("%s it %d sc %d: |diff| %.3g > 1e-12 rel",
							kern.Name(), it, k, cmplx.Abs(a[k]-b[k])/scale)
					}
				}
			}
			if s1.Probes != s2.Probes {
				t.Fatalf("probe counters diverge: %d vs %d", s1.Probes, s2.Probes)
			}
		})
	}
}

// TestProbeIntoAllocs pins the probing hot path — channel evaluation, OFDM
// round trip, noise, impairments — to zero steady-state allocations.
func TestProbeIntoAllocs(t *testing.T) {
	s := testSounder(t, 0.05, DefaultImpairments())
	m := testChannel()
	w := m.Tx.SingleBeam(0.1)
	dst := make(cmx.Vector, s.NumSC)
	s.ProbeInto(m, w, dst) // warm: FFT plan, channel cache
	allocs := testing.AllocsPerRun(100, func() {
		s.ProbeInto(m, w, dst)
	})
	if allocs != 0 {
		t.Fatalf("ProbeInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDelayKernelIntoMatches pins the scratch variant to the allocating one.
func TestDelayKernelIntoMatches(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	dst := make(cmx.Vector, s.NumSC)
	for _, tau := range []float64{0, 1.3e-9, 12e-9, -4e-9, 157e-9} {
		a := s.DelayKernel(tau)
		b := s.DelayKernelInto(tau, dst)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("tau %g: kernels diverge at tap %d", tau, k)
			}
		}
	}
}
