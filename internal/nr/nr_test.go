package nr

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
)

func testSounder(t *testing.T, noise float64, imp Impairments) *Sounder {
	t.Helper()
	s, err := NewSounder(Mu3(), 400e6, 64, noise, imp, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testChannel() *channel.Model {
	return channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, RelAttDB: 5, PhaseRad: 1.0, DelayNs: 12},
	})
}

func TestNumerologyMu3(t *testing.T) {
	n := Mu3()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Symbol ≈ 8.93 µs, slot ≈ 125 µs.
	if math.Abs(n.SymbolDuration()-8.93e-6) > 0.05e-6 {
		t.Fatalf("symbol duration %g", n.SymbolDuration())
	}
	if math.Abs(n.SlotDuration()-125e-6) > 1e-6 {
		t.Fatalf("slot duration %g", n.SlotDuration())
	}
	if math.Abs(n.CSIRSDuration()-0.125e-3) > 2e-6 {
		t.Fatalf("CSI-RS duration %g", n.CSIRSDuration())
	}
	if math.Abs(n.SSBDuration()-0.5e-3) > 5e-6 {
		t.Fatalf("SSB duration %g", n.SSBDuration())
	}
	if err := (Numerology{}).Validate(); err == nil {
		t.Fatal("zero numerology should fail")
	}
}

func TestNewSounderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSounder(Mu3(), 400e6, 48, 0, Impairments{}, rng); err == nil {
		t.Fatal("non-pow2 subcarriers should fail")
	}
	if _, err := NewSounder(Mu3(), 0, 64, 0, Impairments{}, rng); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	if _, err := NewSounder(Mu3(), 400e6, 64, -1, Impairments{}, rng); err == nil {
		t.Fatal("negative noise should fail")
	}
}

func TestNoiselessProbeIsExact(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	m := testChannel()
	w := m.Tx.SingleBeam(0)
	est := s.Probe(m, w)
	truth := m.EffectiveWideband(w, s.SubcarrierOffsets())
	if est.Sub(truth).Norm() > 1e-12*truth.Norm() {
		t.Fatalf("noiseless probe error %g", est.Sub(truth).Norm())
	}
	if s.Probes != 1 {
		t.Fatalf("probe count %d", s.Probes)
	}
}

func TestCFOPreservesMagnitude(t *testing.T) {
	s := testSounder(t, 0, DefaultImpairments())
	m := testChannel()
	w := m.Tx.SingleBeam(0)
	truth := m.EffectiveWideband(w, s.SubcarrierOffsets())
	est1 := s.Probe(m, w)
	est2 := s.Probe(m, w)
	for k := range truth {
		if math.Abs(cmplx.Abs(est1[k])-cmplx.Abs(truth[k])) > 1e-12 {
			t.Fatalf("magnitude corrupted at %d", k)
		}
	}
	// Phases differ across probes (CFO), magnitudes agree.
	phaseDiff := cmplx.Phase(est1[10]) - cmplx.Phase(est2[10])
	if math.Abs(dsp.WrapPhase(phaseDiff)) < 1e-6 {
		t.Fatal("CFO should randomize inter-probe phase")
	}
	if math.Abs(RSS(est1)-RSS(est2)) > 1e-12 {
		t.Fatal("RSS should be CFO-invariant")
	}
}

func TestSFOAddsLinearPhaseOnly(t *testing.T) {
	s := testSounder(t, 0, Impairments{SFOMaxSlope: 1.0})
	m := testChannel()
	w := m.Tx.SingleBeam(0)
	truth := m.EffectiveWideband(w, s.SubcarrierOffsets())
	est := s.Probe(m, w)
	// The phase error est/truth must be linear in subcarrier index.
	err0 := cmplx.Phase(est[0] / truth[0])
	errN := cmplx.Phase(est[len(est)-1] / truth[len(truth)-1])
	mid := len(est) / 2
	errMid := cmplx.Phase(est[mid] / truth[mid])
	predicted := err0 + (errN-err0)*float64(mid)/float64(len(est)-1)
	if math.Abs(dsp.WrapPhase(errMid-predicted)) > 1e-6 {
		t.Fatalf("SFO phase not linear: %g vs %g", errMid, predicted)
	}
}

func TestProbeNoiseScale(t *testing.T) {
	noise := 1e-5
	s := testSounder(t, noise, Impairments{})
	m := testChannel()
	w := m.Tx.SingleBeam(0)
	truth := m.EffectiveWideband(w, s.SubcarrierOffsets())
	// Average the empirical per-subcarrier noise power over many probes.
	var acc float64
	const probes = 200
	for p := 0; p < probes; p++ {
		est := s.Probe(m, w)
		acc += est.Sub(truth).Norm2() / float64(len(est))
	}
	got := acc / probes
	want := noise * noise
	if got < want/2 || got > want*2 {
		t.Fatalf("noise power %g, want ≈ %g", got, want)
	}
}

func TestRSS(t *testing.T) {
	if RSS(nil) != 0 {
		t.Fatal("RSS(nil) != 0")
	}
	csi := cmx.Vector{1, 1i, complex(0, -2)}
	if got := RSS(csi); math.Abs(got-2) > 1e-12 {
		t.Fatalf("RSS = %g", got)
	}
}

func TestCIRPeaksAtPathDelays(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	// Two paths at 0 ns and 25 ns (10 samples apart at 2.5 ns spacing).
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 0},
		{AoDDeg: 30, RelAttDB: 3, DelayNs: 25},
	})
	// Beam that excites both paths.
	h := m.PerAntennaCSI(0)
	w := h.Conj().Normalize()
	cir := s.CIR(s.Probe(m, w))
	mags := cir.Abs()
	// Peak 1 at bin 0, peak 2 at bin 10.
	if mags[0] < mags[1] || mags[0] < mags[63] {
		t.Fatalf("no peak at bin 0: %v", mags[:4])
	}
	peak2 := 10
	if mags[peak2] < mags[peak2-2] || mags[peak2] < mags[peak2+2] {
		t.Fatalf("no peak at bin %d: %v", peak2, mags[7:14])
	}
	if s.SampleSpacing() != 2.5e-9 {
		t.Fatalf("sample spacing %g", s.SampleSpacing())
	}
}

func TestCIRPanicsOnWrongLength(t *testing.T) {
	s := testSounder(t, 0, Impairments{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.CIR(make(cmx.Vector, 16))
}

func TestDelayKernelMatchesChannel(t *testing.T) {
	// The dictionary column for delay τ must equal the measured CIR of a
	// unit single path at that delay, up to the path's complex amplitude.
	s := testSounder(t, 0, Impairments{})
	tau := 7.3e-9
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 0, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: tau * 1e9},
	})
	w := m.Tx.SingleBeam(0)
	cir := s.CIR(s.Probe(m, w))
	kern := s.DelayKernel(tau)
	// cir = α·kern for a single complex α: check collinearity.
	alpha := kern.Hdot(cir)
	alpha /= complex(kern.Norm2(), 0)
	if cir.Sub(kern.Scaled(alpha)).Norm() > 1e-9*cir.Norm() {
		t.Fatal("kernel does not match measured CIR shape")
	}
}

func TestSweepFindsBothPaths(t *testing.T) {
	s := testSounder(t, 1e-6, DefaultImpairments())
	m := testChannel()
	u := m.Tx
	cb := antenna.DFTCodebook(u, 33, dsp.Rad(-60), dsp.Rad(60))
	res := Sweep(s, m, cb, 3, 4, 20)
	if res.NumProbe != 33 {
		t.Fatalf("probes %d", res.NumProbe)
	}
	if math.Abs(res.AirTime-33*s.Num.SSBDuration()) > 1e-12 {
		t.Fatalf("air time %g", res.AirTime)
	}
	if len(res.Peaks) < 2 {
		t.Fatalf("found %d peaks, want ≥ 2", len(res.Peaks))
	}
	angles := res.Angles(cb)
	// Strongest peak near 0°, second near 30°.
	if math.Abs(dsp.Deg(angles[0])) > 5 {
		t.Fatalf("first peak at %g°", dsp.Deg(angles[0]))
	}
	if math.Abs(dsp.Deg(angles[1])-30) > 6 {
		t.Fatalf("second peak at %g°", dsp.Deg(angles[1]))
	}
	// RSS at the LOS beam should be the global max.
	maxIdx := 0
	for i, r := range res.RSS {
		if r > res.RSS[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != res.Peaks[0] {
		t.Fatal("first peak is not the global max")
	}
}

func TestSelectPeaks(t *testing.T) {
	rss := []float64{1, 5, 2, 1, 1, 4, 1, 0.001}
	peaks := SelectPeaks(rss, 2, 2, 20)
	if len(peaks) != 2 || peaks[0] != 1 || peaks[1] != 5 {
		t.Fatalf("peaks = %v", peaks)
	}
	// Dynamic range filter: 0.001 is 37 dB below 5 → excluded.
	rss2 := []float64{0.001, 0, 5, 0, 0}
	peaks2 := SelectPeaks(rss2, 3, 1, 20)
	if len(peaks2) != 1 || peaks2[0] != 2 {
		t.Fatalf("peaks2 = %v", peaks2)
	}
	// Separation filter: everything within the mask collapses to one peak.
	rss3 := []float64{0, 4, 5, 4, 0}
	peaks3 := SelectPeaks(rss3, 3, 3, 30)
	if len(peaks3) != 1 {
		t.Fatalf("peaks3 = %v", peaks3)
	}
	// Merged hump: a second path that only shows as a shoulder (no local
	// maximum) is still found once the main lobe is masked.
	hump := []float64{1, 3, 5, 4.5, 4, 2, 1}
	peaksH := SelectPeaks(hump, 2, 2, 20)
	if len(peaksH) != 2 || peaksH[0] != 2 || peaksH[1] != 4 {
		t.Fatalf("hump peaks = %v", peaksH)
	}
	if SelectPeaks(nil, 3, 1, 20) != nil {
		t.Fatal("nil input should give nil")
	}
	if SelectPeaks(rss, 0, 1, 20) != nil {
		t.Fatal("maxBeams=0 should give nil")
	}
}

func TestOverheadModelMatchesFig18d(t *testing.T) {
	o := OverheadModel{Num: Mu3()}
	// Paper: 3 ms at 8 antennas, 6 ms at 64 for 5G NR log-scanning.
	if got := o.NRTrainingTime(8); math.Abs(got-3e-3) > 0.1e-3 {
		t.Fatalf("NR training at 8 antennas = %g", got)
	}
	if got := o.NRTrainingTime(64); math.Abs(got-6e-3) > 0.2e-3 {
		t.Fatalf("NR training at 64 antennas = %g", got)
	}
	if o.NRTrainingTime(1) != 0 {
		t.Fatal("single antenna needs no training")
	}
	// mmReliable: 0.4 ms for 2-beam (3 probes), 0.6 ms for 3-beam (5).
	if got := o.MaintenanceProbes(2); got != 3 {
		t.Fatalf("2-beam probes = %d", got)
	}
	if got := o.MaintenanceProbes(3); got != 5 {
		t.Fatalf("3-beam probes = %d", got)
	}
	if got := o.MaintenanceTime(2); math.Abs(got-0.4e-3) > 0.05e-3 {
		t.Fatalf("2-beam maintenance = %g", got)
	}
	if got := o.MaintenanceTime(3); math.Abs(got-0.6e-3) > 0.05e-3 {
		t.Fatalf("3-beam maintenance = %g", got)
	}
	// Flat in antenna count by construction; exhaustive is linear.
	if o.ExhaustiveTrainingTime(64) != 64*Mu3().SSBDuration() {
		t.Fatal("exhaustive time wrong")
	}
}

func TestProbeSNRAgainstBudget(t *testing.T) {
	// End-to-end: with the default budget's noise amplitude, the wideband
	// SNR measured from probes of the 7 m indoor channel lands near the
	// paper's ≈27 dB.
	b := link.DefaultBudget()
	s, err := NewSounder(Mu3(), b.BandwidthHz, 64, b.NoiseToTxAmpRatio(), DefaultImpairments(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// 7 m LOS at 28 GHz: loss ≈ 78.3 dB.
	m := channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), env.Band28GHz().PathLossDB(7), []channel.PathSpec{
		{AoDDeg: 0},
	})
	w := m.Tx.SingleBeam(0)
	est := s.Probe(m, w)
	snr := b.WidebandSNRdB(est)
	if snr < 23 || snr > 31 {
		t.Fatalf("probe SNR = %g dB, want ≈27", snr)
	}
}
