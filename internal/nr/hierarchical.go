package nr

import (
	"fmt"
	"math"
	"sort"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
)

// Hierarchical beam training: instead of sweeping every narrow beam, probe
// a few wide (reduced-aperture) beams, descend into the strongest sectors
// with progressively narrower beams, and finish on full-aperture beams.
// This is the logarithmic-time alternative (Hassanieh et al. style) the
// paper cites for both its reactive baseline and as a faster front end to
// mmReliable's establishment. To find multiple paths, the search keeps the
// top-K sectors alive at every level.
//
// For an N-element array with branching factor B, the search probes
// B·K·ceil(log_B(#narrow beams)) beams instead of all #narrow beams.

// HierConfig tunes the hierarchical sweep.
type HierConfig struct {
	// Branch is the number of child sectors probed per parent (≥2).
	Branch int
	// Keep is how many sectors survive each level (≥1); ≥2 is needed to
	// find multiple multipath directions.
	Keep int
	// NarrowBeams is the resolution of the final level (the equivalent
	// exhaustive codebook size).
	NarrowBeams int
	// ScanMin and ScanMax bound the angular search (radians).
	ScanMin, ScanMax float64
	// DynRangeDB discards final beams weaker than this below the best.
	DynRangeDB float64
}

// DefaultHierConfig uses branching 4 with two survivors and a final
// resolution of 16 sectors over ±60° — about the half-power beamwidth of
// an 8-element array. Descending below the array's resolution is
// counter-productive: a path's energy then spans several final sectors and
// its neighbors crowd out genuinely distinct paths.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		Branch:      4,
		Keep:        2,
		NarrowBeams: 16,
		ScanMin:     -math.Pi / 3,
		ScanMax:     math.Pi / 3,
		DynRangeDB:  10,
	}
}

// Validate checks the configuration.
func (c HierConfig) Validate() error {
	if c.Branch < 2 || c.Keep < 1 || c.NarrowBeams < c.Branch {
		return fmt.Errorf("nr: invalid hierarchical config %+v", c)
	}
	if c.ScanMax <= c.ScanMin {
		return fmt.Errorf("nr: empty scan range")
	}
	return nil
}

// sector is a candidate angular interval during the descent.
type sector struct {
	lo, hi float64
	rss    float64
}

// HierSweep runs the hierarchical search and returns the found beam angles
// (strongest first), their RSS, the probe count, and the air time consumed
// (one SSB per probe, as in the exhaustive sweep).
type HierResult struct {
	Angles   []float64
	RSS      []float64
	NumProbe int
	AirTime  float64
}

// HierSweep performs hierarchical beam training over the channel m.
func HierSweep(s *Sounder, m *channel.Model, u *antenna.ULA, cfg HierConfig) (HierResult, error) {
	if err := cfg.Validate(); err != nil {
		return HierResult{}, err
	}
	res := HierResult{}
	// Depth so that Branch^depth ≥ NarrowBeams.
	depth := int(math.Ceil(math.Log(float64(cfg.NarrowBeams)) / math.Log(float64(cfg.Branch))))
	if depth < 1 {
		depth = 1
	}
	live := []sector{{lo: cfg.ScanMin, hi: cfg.ScanMax}}
	// One CSI buffer serves every probe of the descent: only the scalar RSS
	// of each probe survives.
	csi := make(cmx.Vector, s.NumSC)
	for level := 1; level <= depth; level++ {
		// Aperture grows with depth: wide beams early, full aperture last.
		frac := float64(level) / float64(depth)
		active := int(math.Max(2, math.Round(frac*float64(u.N))))
		var next []sector
		for _, sec := range live {
			step := (sec.hi - sec.lo) / float64(cfg.Branch)
			for b := 0; b < cfg.Branch; b++ {
				lo := sec.lo + float64(b)*step
				hi := lo + step
				center := (lo + hi) / 2
				w := antenna.WideBeam(u, center, active)
				rss := RSS(s.ProbeInto(m, w, csi))
				res.NumProbe++
				next = append(next, sector{lo: lo, hi: hi, rss: rss})
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].rss > next[j].rss })
		// Keep the top sectors, but never two ADJACENT ones: a path on a
		// sector boundary leaks into both neighbors and would otherwise
		// hog every survivor slot, dropping genuinely distinct paths.
		var kept []sector
		for _, cand := range next {
			adjacent := false
			for _, k := range kept {
				if cand.lo <= k.hi+1e-12 && k.lo <= cand.hi+1e-12 {
					adjacent = true
					break
				}
			}
			if !adjacent {
				kept = append(kept, cand)
				if len(kept) == cfg.Keep {
					break
				}
			}
		}
		if len(kept) == 0 && len(next) > 0 {
			kept = next[:1]
		}
		live = kept
	}
	res.AirTime = float64(res.NumProbe) * s.Num.SSBDuration()
	if len(live) == 0 {
		return res, nil
	}
	floor := live[0].rss * math.Pow(10, -cfg.DynRangeDB/10)
	for _, sec := range live {
		if sec.rss < floor {
			continue
		}
		res.Angles = append(res.Angles, (sec.lo+sec.hi)/2)
		res.RSS = append(res.RSS, sec.rss)
	}
	return res, nil
}

// HierProbeCount returns the number of probes a hierarchical sweep issues
// for the given configuration (for overhead accounting without running it).
func HierProbeCount(cfg HierConfig) int {
	depth := int(math.Ceil(math.Log(float64(cfg.NarrowBeams)) / math.Log(float64(cfg.Branch))))
	if depth < 1 {
		depth = 1
	}
	// Level 1 probes Branch sectors from the single root; afterwards each
	// of the Keep survivors spawns Branch probes.
	return cfg.Branch + (depth-1)*cfg.Keep*cfg.Branch
}
