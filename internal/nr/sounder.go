package nr

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/dsp"
)

// Impairments controls the hardware offsets applied to each probe.
type Impairments struct {
	// CFO gives every probe an unknown common phase rotation drawn
	// uniformly from [0, 2π). Real CFO drifts continuously; what matters to
	// the estimators is that the phase is not comparable across probes.
	CFO bool
	// SFOMaxSlope is the maximum magnitude of the random linear phase slope
	// across the band (radians from band edge to band edge) modelling
	// sampling/timing offset. 0 disables.
	SFOMaxSlope float64
}

// DefaultImpairments enables CFO and a ±0.5 rad edge-to-edge SFO slope.
func DefaultImpairments() Impairments {
	return Impairments{CFO: true, SFOMaxSlope: 0.5}
}

// Sounder measures wideband CSI through the OFDM pilot path: it modulates a
// known QPSK pilot onto the subcarriers, runs it through an IFFT/FFT OFDM
// round trip with the channel applied per subcarrier, adds receiver AWGN,
// applies CFO/SFO, and least-squares-estimates the channel.
type Sounder struct {
	Num         Numerology
	BandwidthHz float64
	NumSC       int     // number of measured subcarriers (power of two)
	NoiseAmp    float64 // per-subcarrier noise amplitude relative to unit TX
	Imp         Impairments

	rng   *rand.Rand
	pilot cmx.Vector
	// offsets caches SubcarrierOffsets at construction; Probe used to
	// re-allocate this []float64 on every sounding.
	offsets []float64
	// hBuf and tdBuf are the per-sounder scratch vectors of the probe hot
	// path (true wideband channel and OFDM time-domain round trip). A
	// Sounder is single-threaded by construction (it owns an rng), so the
	// scratch needs no synchronization.
	hBuf, tdBuf cmx.Vector
	// Probes counts channel soundings for overhead accounting.
	Probes int
}

// NewSounder builds a sounder. numSC must be a power of two (the CIR path
// uses an IFFT).
func NewSounder(num Numerology, bandwidthHz float64, numSC int, noiseAmp float64, imp Impairments, rng *rand.Rand) (*Sounder, error) {
	if !dsp.IsPow2(numSC) {
		return nil, fmt.Errorf("nr: numSC %d is not a power of two", numSC)
	}
	if bandwidthHz <= 0 {
		return nil, fmt.Errorf("nr: non-positive bandwidth %g", bandwidthHz)
	}
	if noiseAmp < 0 {
		return nil, fmt.Errorf("nr: negative noise amplitude %g", noiseAmp)
	}
	if err := num.Validate(); err != nil {
		return nil, err
	}
	s := &Sounder{
		Num:         num,
		BandwidthHz: bandwidthHz,
		NumSC:       numSC,
		NoiseAmp:    noiseAmp,
		Imp:         imp,
		rng:         rng,
	}
	s.pilot = qpskPilot(numSC)
	s.offsets = channel.SubcarrierOffsets(bandwidthHz, numSC)
	s.hBuf = make(cmx.Vector, numSC)
	s.tdBuf = make(cmx.Vector, numSC)
	return s, nil
}

// qpskPilot returns a deterministic unit-magnitude QPSK reference sequence
// (a quadratic-phase Zadoff-Chu-flavored sequence, constant amplitude).
func qpskPilot(n int) cmx.Vector {
	p := make(cmx.Vector, n)
	for k := range p {
		// Quadratic phase quantized to QPSK.
		q := (k * k) % 4
		p[k] = cmplx.Exp(complex(0, float64(q)*math.Pi/2+math.Pi/4))
	}
	return p
}

// SubcarrierOffsets returns the baseband frequency of each measured
// subcarrier. The returned slice is the sounder's cached copy — treat it as
// read-only.
func (s *Sounder) SubcarrierOffsets() []float64 {
	if s.offsets == nil {
		s.offsets = channel.SubcarrierOffsets(s.BandwidthHz, s.NumSC)
	}
	return s.offsets
}

// Probe sounds the channel with TX beam w and returns the estimated
// per-subcarrier CSI (impaired and noisy). The estimate ĥ[k] satisfies
// ĥ[k] = e^{jθ}e^{jφk}·h[k] + ν[k] with θ the CFO phase, φ the SFO slope,
// and ν white noise of amplitude NoiseAmp.
func (s *Sounder) Probe(m *channel.Model, w cmx.Vector) cmx.Vector {
	return s.ProbeInto(m, w, make(cmx.Vector, s.NumSC))
}

// ProbeInto is Probe writing the CSI estimate into dst (allocated when
// nil), reusing the sounder's internal scratch for the channel evaluation
// and the OFDM round trip — zero allocations in steady state. dst must not
// alias a previous ProbeInto result the caller still needs; the RNG
// consumption is identical to Probe's, so mixing Probe and ProbeInto calls
// leaves every random draw unchanged.
func (s *Sounder) ProbeInto(m *channel.Model, w cmx.Vector, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, s.NumSC)
	}
	if len(dst) != s.NumSC {
		panic(fmt.Sprintf("nr: probe dst length %d != %d subcarriers", len(dst), s.NumSC))
	}
	if s.hBuf == nil {
		s.hBuf = make(cmx.Vector, s.NumSC)
		s.tdBuf = make(cmx.Vector, s.NumSC)
	}
	// True channel per subcarrier under this beam.
	h := m.EffectiveWidebandInto(w, s.SubcarrierOffsets(), s.hBuf)
	return s.probeFromH(h, dst)
}

// ProbeFromH is ProbeInto with the true wideband channel response h already
// evaluated by the caller — the seam a frame-barrier batch uses: evaluate
// every (model, beam) response in one batched kernel pass, then push each
// row through its sounder's OFDM/noise/impairment chain. The RNG consumption
// is identical to ProbeInto's, so switching a call site between the two
// leaves every subsequent random draw unchanged. len(h) must be NumSC; h is
// only read.
func (s *Sounder) ProbeFromH(h cmx.Vector, dst cmx.Vector) cmx.Vector {
	if dst == nil {
		dst = make(cmx.Vector, s.NumSC)
	}
	if len(dst) != s.NumSC {
		panic(fmt.Sprintf("nr: probe dst length %d != %d subcarriers", len(dst), s.NumSC))
	}
	if len(h) != s.NumSC {
		panic(fmt.Sprintf("nr: probe channel length %d != %d subcarriers", len(h), s.NumSC))
	}
	if s.tdBuf == nil {
		s.tdBuf = make(cmx.Vector, s.NumSC)
	}
	return s.probeFromH(h, dst)
}

// ProbeFromSplit is ProbeFromH for a planar channel row (the batched-kernel
// layout): the row is interleaved into the sounder's channel scratch and
// sounded in place.
func (s *Sounder) ProbeFromSplit(hRe, hIm []float64, dst cmx.Vector) cmx.Vector {
	if len(hRe) != s.NumSC || len(hIm) != s.NumSC {
		panic(fmt.Sprintf("nr: probe channel lengths %d/%d != %d subcarriers", len(hRe), len(hIm), s.NumSC))
	}
	if s.hBuf == nil {
		s.hBuf = make(cmx.Vector, s.NumSC)
		s.tdBuf = make(cmx.Vector, s.NumSC)
	}
	cmx.Combine(hRe, hIm, s.hBuf)
	return s.ProbeFromH(s.hBuf, dst)
}

// probeFromH runs the measurement chain after channel evaluation: OFDM
// round trip, receiver noise, CFO/SFO, pilot equalization.
func (s *Sounder) probeFromH(h, dst cmx.Vector) cmx.Vector {
	// OFDM round trip: pilot → IFFT → (channel in time domain is exactly a
	// per-subcarrier multiply for CP-OFDM) → FFT → equalize.
	td := s.tdBuf
	for i := range td {
		td[i] = s.pilot[i] * h[i]
	}
	if err := dsp.IFFT(td); err != nil {
		panic(err) // length checked at construction
	}
	// Receiver AWGN in the time domain (unitary pair keeps the
	// per-subcarrier noise amplitude equal to NoiseAmp).
	sigma := s.NoiseAmp / math.Sqrt2
	scale := 1 / math.Sqrt(float64(s.NumSC))
	for i := range td {
		td[i] += complex(s.rng.NormFloat64()*sigma*scale, s.rng.NormFloat64()*sigma*scale)
	}
	rx := td
	if err := dsp.FFT(rx); err != nil {
		panic(err)
	}
	// Equalize by the known pilot.
	for k := range dst {
		dst[k] = rx[k] / s.pilot[k]
	}
	// Impairments.
	var theta, slope float64
	if s.Imp.CFO {
		theta = s.rng.Float64() * 2 * math.Pi
	}
	if s.Imp.SFOMaxSlope > 0 {
		slope = (s.rng.Float64()*2 - 1) * s.Imp.SFOMaxSlope
	}
	if theta != 0 || slope != 0 {
		for k := range dst {
			frac := float64(k)/float64(s.NumSC) - 0.5
			dst[k] *= cmplx.Exp(complex(0, theta+slope*frac))
		}
	}
	s.Probes++
	return dst
}

// RSS returns the mean per-subcarrier power of a CSI estimate — the
// magnitude observable that survives CFO/SFO.
func RSS(csi cmx.Vector) float64 {
	if len(csi) == 0 {
		return 0
	}
	var p float64
	for _, h := range csi {
		p += real(h)*real(h) + imag(h)*imag(h)
	}
	return p / float64(len(csi))
}

// CIR converts a wideband CSI estimate into a channel impulse response by
// inverse FFT. Index n corresponds to delay n/Bandwidth (modulo the CIR
// span); the super-resolution module fits sinc kernels to this.
func (s *Sounder) CIR(csi cmx.Vector) cmx.Vector {
	return s.CIRInto(csi, make(cmx.Vector, s.NumSC))
}

// CIRInto is CIR writing into dst (allocated when nil) — the maintenance
// loop's zero-allocation variant. dst must not alias csi.
func (s *Sounder) CIRInto(csi, dst cmx.Vector) cmx.Vector {
	if len(csi) != s.NumSC {
		panic(fmt.Sprintf("nr: CIR length %d != %d subcarriers", len(csi), s.NumSC))
	}
	if dst == nil {
		dst = make(cmx.Vector, s.NumSC)
	}
	if len(dst) != s.NumSC {
		panic(fmt.Sprintf("nr: CIR dst length %d != %d subcarriers", len(dst), s.NumSC))
	}
	copy(dst, csi)
	if err := dsp.IFFT(dst); err != nil {
		panic(err)
	}
	return dst
}

// SampleSpacing returns the delay resolution of the CIR (1/Bandwidth), the
// paper's "system resolution" (2.5 ns at 400 MHz).
func (s *Sounder) SampleSpacing() float64 { return 1 / s.BandwidthHz }

// DelayKernel returns the CIR signature of a unit-amplitude path at delay
// tau: the inverse FFT of its baseband frequency response over this
// sounder's subcarriers. Super-resolution (Eq. 23) uses these as dictionary
// columns so the model matches the measurement transform exactly; for
// delays well inside the CIR span the magnitude approaches
// |sinc(B(nTs − τ))| (Eq. 22).
func (s *Sounder) DelayKernel(tau float64) cmx.Vector {
	return s.DelayKernelInto(tau, make(cmx.Vector, s.NumSC))
}

// DelayKernelInto is DelayKernel writing into dst (allocated when nil). It
// satisfies superres.KernelIntoFunc, so the super-resolution search — which
// evaluates this kernel hundreds of times per fit — can run on one reused
// scratch column.
func (s *Sounder) DelayKernelInto(tau float64, dst cmx.Vector) cmx.Vector {
	// Closed form of IFFT_n{e^{−j2πf_k τ}} over the centered subcarrier
	// grid f_k = −B/2 + (k+½)B/N: a geometric series whose ratio at output
	// tap n is ρ_n = e^{j(2πn/N − 2πBτ/N)} and whose N-th power is the
	// n-independent constant e^{−j2πBτ}. Equivalent to the IFFT the CIR
	// path computes, at a fraction of the cost.
	n := s.NumSC
	out := dst
	if out == nil {
		out = make(cmx.Vector, n)
	}
	if len(out) != n {
		panic(fmt.Sprintf("nr: delay-kernel dst length %d != %d subcarriers", len(out), n))
	}
	bTau := s.BandwidthHz * tau
	lead := cmplx.Exp(complex(0, -2*math.Pi*(-s.BandwidthHz/2+s.BandwidthHz/(2*float64(n)))*tau))
	num := cmplx.Exp(complex(0, -2*math.Pi*bTau)) - 1
	ls := lead * complex(1/float64(n), 0)
	lsn := ls * num
	// ρ_n advances by a fixed rotation per tap; one exp seeds the
	// recurrence (64 steps accumulate negligible drift).
	step := cmplx.Exp(complex(0, 2*math.Pi/float64(n)))
	rho := cmplx.Exp(complex(0, -2*math.Pi*bTau/float64(n)))
	for i := 0; i < n; i++ {
		den := rho - 1
		// |den|² < (1e-12)²: same degenerate-ratio branch as an abs
		// check, without the hypot; the ratio itself multiplies by the
		// conjugate reciprocal instead of paying a complex division per
		// tap (this kernel runs once per super-resolution compat probe).
		d := real(den)*real(den) + imag(den)*imag(den)
		if d < 1e-24 {
			out[i] = ls * complex(float64(n), 0)
		} else {
			inv := 1 / d
			out[i] = lsn * complex(real(den)*inv, -imag(den)*inv)
		}
		rho *= step
	}
	return out
}
