// Package nr provides the 5G-NR-flavored PHY layer of the simulator:
// numerology/timing, an OFDM channel sounder that produces CSI estimates
// through actual pilot modulation/demodulation with AWGN and CFO/SFO
// impairments, SSB beam-sweep training, and probing-overhead accounting.
//
// The CFO/SFO model is the load-bearing detail: every probe observes the
// channel through an unknown common phase (carrier frequency offset) and an
// unknown linear phase slope across subcarriers (sampling/timing offset).
// Channel magnitudes survive both, which is why mmReliable's two-probe
// estimator (§3.3) works from magnitudes alone.
package nr

import "fmt"

// Numerology describes an OFDM configuration. The paper uses 5G NR FR2
// numerology μ=3: 120 kHz subcarrier spacing, 14-symbol slots.
type Numerology struct {
	SCSHz          float64 // subcarrier spacing
	SymbolsPerSlot int
	CPFraction     float64 // cyclic prefix duration as a fraction of the symbol
}

// Mu3 returns FR2 numerology μ=3 (120 kHz SCS). Symbol duration with
// normal CP ≈ 8.93 µs; slot duration 125 µs.
func Mu3() Numerology {
	return Numerology{SCSHz: 120e3, SymbolsPerSlot: 14, CPFraction: 0.0703}
}

// Validate checks the numerology.
func (n Numerology) Validate() error {
	if n.SCSHz <= 0 || n.SymbolsPerSlot <= 0 || n.CPFraction < 0 {
		return fmt.Errorf("nr: invalid numerology %+v", n)
	}
	return nil
}

// SymbolDuration returns the OFDM symbol duration including cyclic prefix.
func (n Numerology) SymbolDuration() float64 {
	return (1 + n.CPFraction) / n.SCSHz
}

// SlotDuration returns the slot duration in seconds.
func (n Numerology) SlotDuration() float64 {
	return float64(n.SymbolsPerSlot) * n.SymbolDuration()
}

// Standard signaling durations from the paper's §6.2 accounting: one
// CSI-RS occupies one slot (0.125 ms at μ=3) and one SSB takes four slots
// (0.5 ms).
const (
	CSIRSSlots = 1
	SSBSlots   = 4
)

// CSIRSDuration returns the air time of one CSI-RS probe.
func (n Numerology) CSIRSDuration() float64 {
	return CSIRSSlots * n.SlotDuration()
}

// SSBDuration returns the air time of one SSB beam probe.
func (n Numerology) SSBDuration() float64 {
	return SSBSlots * n.SlotDuration()
}
