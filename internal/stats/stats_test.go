package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Var(xs); got != 4 {
		t.Fatalf("Var = %g", got)
	}
	if got := Std(xs); got != 2 {
		t.Fatalf("Std = %g", got)
	}
	if Mean(nil) != 0 || Var([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max wrong")
	}
}

func TestRMSE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if RMSE(a, b) != 0 {
		t.Fatal("RMSE of identical slices != 0")
	}
	c := []float64{2, 2, 3}
	want := math.Sqrt(1.0 / 3.0)
	if math.Abs(RMSE(a, c)-want) > 1e-12 {
		t.Fatalf("RMSE = %g want %g", RMSE(a, c), want)
	}
	if MSE(a, c) < 0 {
		t.Fatal("MSE negative")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	RMSE(a, []float64{1})
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %g want %g", c.p, got, c.want)
		}
	}
	if Median(xs) != 3 {
		t.Fatal("Median wrong")
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median of unsorted = %g", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %g", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Fatalf("At(2) = %g", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %g", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %g", got)
	}
	if got := c.Quantile(1); got != 3 {
		t.Fatalf("Quantile(1) = %g", got)
	}
}

// Property: a CDF is monotone nondecreasing and bounded by [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := 0.0
		for i := range c.X {
			if c.P[i] < prev || c.P[i] < 0 || c.P[i] > 1+1e-12 {
				return false
			}
			prev = c.P[i]
			if i > 0 && c.X[i] < c.X[i-1] {
				return false
			}
		}
		return math.Abs(c.P[len(c.P)-1]-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFSample(t *testing.T) {
	c := NewCDF(Linspace(0, 99, 100))
	xs, ps := c.Sample(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("Sample sizes %d %d", len(xs), len(ps))
	}
	if !sort.Float64sAreSorted(xs) || !sort.Float64sAreSorted(ps) {
		t.Fatal("Sample not sorted")
	}
	if xs[0] != 0 || xs[4] != 99 {
		t.Fatalf("Sample endpoints %g %g", xs[0], xs[4])
	}
	if gotX, gotP := c.Sample(0); gotX != nil || gotP != nil {
		t.Fatal("Sample(0) should be nil")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.9, 1.5, 2.5, -5, 99}
	centers, counts := Histogram(xs, 0, 3, 3)
	if len(centers) != 3 {
		t.Fatalf("centers %v", centers)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram dropped samples: %d != %d", total, len(xs))
	}
	// Out-of-range clamped into end bins.
	if counts[0] < 1 || counts[2] < 1 {
		t.Fatalf("clamping failed: %v", counts)
	}
	if c, n := Histogram(xs, 3, 0, 3); c != nil || n != nil {
		t.Fatal("invalid range should return nil")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace = %v", got)
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v", got)
	}
	if Linspace(0, 1, 0) != nil {
		t.Fatal("Linspace n=0 should be nil")
	}
}

func TestPercentileMatchesSortedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	// With 1001 samples, P(k/10) should equal s[k*100].
	for k := 0; k <= 10; k++ {
		want := s[k*100]
		if got := Percentile(xs, float64(k)*10); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P%d = %g want %g", k*10, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "scheme", "snr_db")
	tb.AddRow("single", "20.0")
	tb.AddFloats(1.23456, 7)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "scheme") || !strings.Contains(out, "single") {
		t.Fatalf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}
