package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width ASCII tables for the benchmark harness. Rows are
// printed in insertion order.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells. Numeric cells should be pre-formatted by
// the caller (use Fmt for a sensible default).
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddFloats appends a row formatted from float64 values with %.3g.
func (t *Table) AddFloats(vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = Fmt(v)
	}
	t.AddRow(cells...)
}

// Fmt formats a float for table display.
func Fmt(v float64) string { return fmt.Sprintf("%.4g", v) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
