// Package stats provides the descriptive statistics and table-rendering
// helpers used by the benchmark harness: CDFs, percentiles, moments, RMSE,
// histograms, and fixed-width ASCII tables matching the paper's reported
// series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Var returns the population variance of xs (0 for fewer than 2 samples).
func Var(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Var(xs)) }

// Min returns the smallest element of xs (+Inf for empty).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (−Inf for empty).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// RMSE returns the root-mean-square error between a and b, which must have
// equal lengths.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: RMSE length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// MSE returns the mean squared error between a and b.
func MSE(a, b []float64) float64 {
	r := RMSE(a, b)
	return r * r
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF holds an empirical cumulative distribution.
type CDF struct {
	X []float64 // sorted sample values
	P []float64 // cumulative probability at each X, in (0, 1]
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	p := make([]float64, len(s))
	n := float64(len(s))
	for i := range s {
		p[i] = float64(i+1) / n
	}
	return &CDF{X: s, P: p}
}

// At returns the empirical probability P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(c.X, x)
	// idx is the first element > x after adjusting for equal runs.
	for idx < len(c.X) && c.X[idx] <= x {
		idx++
	}
	if idx == 0 {
		return 0
	}
	return c.P[idx-1]
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.X) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	for i, p := range c.P {
		if p >= q {
			return c.X[i]
		}
	}
	return c.X[len(c.X)-1]
}

// Sample returns n evenly spaced (value, probability) points of the CDF for
// plotting/printing.
func (c *CDF) Sample(n int) (xs, ps []float64) {
	if n <= 0 || len(c.X) == 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.X) - 1) / max(n-1, 1)
		xs[i] = c.X[idx]
		ps[i] = c.P[idx]
	}
	return xs, ps
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// bin centers and counts. Values outside the range are clamped into the
// first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) (centers []float64, counts []int) {
	if nbins <= 0 || hi <= lo {
		return nil, nil
	}
	centers = make([]float64, nbins)
	counts = make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return centers, counts
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
