package dsp_test

import (
	"math"
	"math/cmplx"
	"testing"

	"mmreliable/internal/dsp"
	"mmreliable/internal/dsp/kerneltest"
)

// TestKernelEquivalence pins every registered kernel against the reference
// through the shared property harness. A new kernel (e.g. a GOAMD64
// variant) inherits the ≤1e-12 contract by appearing in dsp.Kernels().
func TestKernelEquivalence(t *testing.T) {
	ks := dsp.Kernels()
	if len(ks) < 2 {
		t.Fatal("expected at least reference + planar kernels")
	}
	if ks[0] != dsp.Reference {
		t.Fatal("Kernels()[0] must be the reference kernel")
	}
	for _, k := range ks[1:] {
		kerneltest.RunEquivalence(t, dsp.Reference, k)
	}
}

// TestReferenceMirrorsComplexLoops pins the reference kernel bit-for-bit
// against the historical complex128 formulations it replaces: the factored
// wideband recurrence (cmplx.Rect seeds, complex multiply-accumulate) and
// the steering-vector cmplx.Exp fill. This is the statement that makes the
// reference kernel an oracle rather than a third implementation.
func TestReferenceMirrorsComplexLoops(t *testing.T) {
	ref := dsp.Reference
	const n = 200
	for _, tc := range []struct{ th0, dth float64 }{
		{17593.6543, -0.0981}, {-3.25, 0.47}, {0.1, 0}, {-28274.12, 2 * math.Pi / 64},
	} {
		cl := complex(0.7e-4, -1.1e-4)
		want := make([]complex128, n)
		r := cmplx.Rect(1, tc.dth)
		var p complex128
		for k := range want {
			if k%dsp.PhasorReseed == 0 {
				p = cmplx.Rect(1, tc.th0+float64(k)*tc.dth)
			}
			want[k] += cl * p
			p *= r
		}
		gotRe, gotIm := make([]float64, n), make([]float64, n)
		ref.PhasorRampAxpy(gotRe, gotIm, real(cl), imag(cl), tc.th0, tc.dth)
		for k := range want {
			if real(want[k]) != gotRe[k] || imag(want[k]) != gotIm[k] {
				t.Fatalf("ramp θ0=%g Δθ=%g: element %d = (%g,%g), want %v bit-exactly",
					tc.th0, tc.dth, k, gotRe[k], gotIm[k], want[k])
			}
		}
	}
	// Steering fill vs cmplx.Exp(complex(0, k·Δθ)): e^0 is exactly 1, so
	// the historical loop is Sin/Cos of the same argument.
	for _, dth := range []float64{-2.51, 0.33, 0} {
		want := make([]complex128, 8)
		for k := range want {
			want[k] = cmplx.Exp(complex(0, dth*float64(k)))
		}
		got := make([]complex128, 8)
		ref.PhasorFillCmplx(got, 0, dth)
		for k := range want {
			if want[k] != got[k] && !(cmplx.Abs(want[k]-got[k]) == 0) {
				t.Fatalf("fill Δθ=%g: element %d = %v, want %v bit-exactly", dth, k, got[k], want[k])
			}
		}
	}
}

// TestPlanarSumLog2SNRHugeProduct drives the product-form reduction far
// past float64 overflow territory: 256 subcarriers at ~240 dB SNR each
// would overflow a single running product (2^(256·~80) ≫ 2^1024) without
// renormalization.
func TestPlanarSumLog2SNRHugeProduct(t *testing.T) {
	const n = 256
	re, im := make([]float64, n), make([]float64, n)
	for i := range re {
		re[i], im[i] = 1e9, -1e9
	}
	want := dsp.Reference.SumLog2SNR(re, im, 31.62, 2.1e-8)
	got := dsp.Planar.SumLog2SNR(re, im, 31.62, 2.1e-8)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("planar reduction overflowed: %g", got)
	}
	if d := math.Abs(want-got) / want; d > kerneltest.Tol {
		t.Fatalf("huge product: %g vs %g (rel %g)", got, want, d)
	}
}

// TestSetKernel checks the test/bench hook restores cleanly and that the
// env-independent default is the planar kernel.
func TestSetKernel(t *testing.T) {
	prev := dsp.SetKernel(dsp.Reference)
	if dsp.Active() != dsp.Reference {
		t.Fatal("SetKernel did not take effect")
	}
	dsp.SetKernel(prev)
	if dsp.Active() != prev {
		t.Fatal("SetKernel did not restore")
	}
}
