package dsp

import "math"

// DB converts a linear power ratio to decibels. Zero or negative input maps
// to -Inf, mirroring 10·log10.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmpDB converts a linear amplitude ratio to decibels (20·log10).
func AmpDB(linear float64) float64 {
	return 20 * math.Log10(linear)
}

// AmpFromDB converts decibels to a linear amplitude ratio.
func AmpFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// WrapPhase wraps an angle in radians to [−π, π).
func WrapPhase(theta float64) float64 {
	t := math.Mod(theta+math.Pi, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	return t - math.Pi
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
