package dsp

import (
	"math"
	"os"
)

// PhasorReseed is the shared recurrence length between exact re-seeds of a
// unit-phasor recurrence: every implementation that sweeps e^{jθ₀+jkΔθ}
// across a grid (the factored wideband channel kernel, the super-resolution
// frequency ramps, the planar kernels below) re-seeds from sin/cos every
// this many steps, bounding accumulated rounding drift to ~PhasorReseed·ε
// instead of O(n·ε).
const PhasorReseed = 64

// Kernel is the pluggable planar DSP backend behind the per-slot hot path.
// Operands are planar: separate re/im []float64 slices instead of
// []complex128, so the fast implementation runs on plain float range loops
// the compiler can vectorize. Two implementations ship:
//
//   - Reference: scalar code arithmetically identical to the historical
//     complex128 loops (same operation order, same seeding), kept as the
//     oracle every other kernel is pinned against.
//   - Planar: restructured loops — independent phasor chains, product-form
//     log reductions — that agree with Reference to well under 1e-12
//     (pinned by kerneltest.RunEquivalence for every registered kernel).
//
// Kernels are stateless and safe for concurrent use; all per-call state
// lives in the caller-provided slices.
//
// Phase domain: the equivalence pin holds for |θ₀| + n·|Δθ| ≲ 10⁴ radians.
// Beyond that, one ulp of the phase argument itself exceeds 1e-12 rad, so
// per-element evaluation and recurrence advance legitimately disagree at
// the pin level. Carrier-scale phases (2π·fc·τ ≈ ±2e4) must be folded into
// the coefficient — exactly what the factored channel kernel does.
type Kernel interface {
	// Name identifies the kernel ("reference", "planar").
	Name() string

	// PhasorRampAxpy accumulates c·e^{j(θ₀+kΔθ)} into dst for k = 0..n−1,
	// with c = cRe + j·cIm and n = len(dstRe) = len(dstIm). The phasor is
	// re-seeded exactly every PhasorReseed steps. This is one path's
	// contribution to a factored wideband channel evaluation.
	PhasorRampAxpy(dstRe, dstIm []float64, cRe, cIm, theta0, dTheta float64)

	// PhasorFill writes e^{j(θ₀+kΔθ)} into dst for k = 0..n−1 (planar
	// steering-vector synthesis: θ₀ = 0, Δθ = −2π(d/λ)sinφ).
	PhasorFill(dstRe, dstIm []float64, theta0, dTheta float64)

	// PhasorFillCmplx is PhasorFill with an interleaved complex destination
	// (the layout antenna.SteeringInto hands out).
	PhasorFillCmplx(dst []complex128, theta0, dTheta float64)

	// PhasorDot returns Σ_k row[k]·e^{j(θ₀+kΔθ)} over the planar row — the
	// frequency-domain super-resolution candidate correlation.
	PhasorDot(rowRe, rowIm []float64, theta0, dTheta float64) (re, im float64)

	// DotSplit returns the unconjugated dot Σ_n a[n]·w[n] of a planar
	// vector with an interleaved complex one (steering row × beam weights).
	DotSplit(aRe, aIm []float64, w []complex128) (re, im float64)

	// SumLog2SNR returns Σ_k log2(1 + txLin·(re[k]²+im[k]²)/noiseLin) — the
	// capacity sum behind the effective wideband SNR.
	SumLog2SNR(re, im []float64, txLin, noiseLin float64) float64

	// AmpFromDB returns the linear amplitude 10^(−lossDB/20) of a path loss.
	AmpFromDB(lossDB float64) float64
}

// Reference is the scalar oracle kernel (see Kernel).
var Reference Kernel = refKernel{}

// Planar is the fast planar kernel (see Kernel).
var Planar Kernel = planarKernel{}

// Kernels returns every registered kernel, Reference first. The
// kernel-equivalence harness pins each of the others against Reference.
func Kernels() []Kernel { return []Kernel{Reference, Planar} }

// active is the process-wide kernel the hot paths dispatch through.
// Determinism note: output byte-identity across -workers holds for ANY
// active kernel (every worker runs the same one); switching kernels between
// runs shifts results by the kernels' ≤1e-12 disagreement.
var active = Planar

func init() {
	switch os.Getenv("MMR_DSP_KERNEL") {
	case "reference":
		active = Reference
	case "planar", "":
	default:
		// Unknown names keep the default rather than failing init; the
		// selection is a tuning knob, not configuration.
	}
}

// Active returns the kernel the hot paths currently dispatch through
// (default Planar; MMR_DSP_KERNEL=reference selects the oracle).
func Active() Kernel { return active }

// SetKernel swaps the active kernel and returns the previous one. It is a
// test/benchmark hook: call it before any worker goroutines start (it is
// not synchronized) and restore the previous kernel when done.
func SetKernel(k Kernel) Kernel {
	prev := active
	active = k
	return prev
}

// ---------------------------------------------------------------------------
// Reference kernel: scalar loops arithmetically identical to the historical
// complex128 code. Go's compiler lowers complex128 multiply/add to the
// naive componentwise formulas without fusing, so writing the same
// expressions over floats reproduces the old results bit for bit.
// ---------------------------------------------------------------------------

type refKernel struct{}

func (refKernel) Name() string { return "reference" }

func (refKernel) PhasorRampAxpy(dstRe, dstIm []float64, cRe, cIm, theta0, dTheta float64) {
	// Mirrors the historical factored-kernel inner loop:
	//   r := cmplx.Rect(1, Δθ); p = cmplx.Rect(1, θ₀+kΔθ) at re-seeds;
	//   dst[k] += c·p; p *= r.
	rRe, rIm := math.Cos(dTheta), math.Sin(dTheta)
	var pRe, pIm float64
	for k := range dstRe {
		if k%PhasorReseed == 0 {
			th := theta0 + float64(k)*dTheta
			pRe, pIm = math.Cos(th), math.Sin(th)
		}
		dstRe[k] += cRe*pRe - cIm*pIm
		dstIm[k] += cRe*pIm + cIm*pRe
		pRe, pIm = pRe*rRe-pIm*rIm, pRe*rIm+pIm*rRe
	}
}

func (refKernel) PhasorFill(dstRe, dstIm []float64, theta0, dTheta float64) {
	// Per-element exact evaluation — the rounding pattern of the historical
	// cmplx.Exp(complex(0, k·Δθ)) steering loop (e^0 = 1 exactly).
	for k := range dstRe {
		th := theta0 + float64(k)*dTheta
		dstRe[k], dstIm[k] = math.Cos(th), math.Sin(th)
	}
}

func (refKernel) PhasorFillCmplx(dst []complex128, theta0, dTheta float64) {
	for k := range dst {
		th := theta0 + float64(k)*dTheta
		dst[k] = complex(math.Cos(th), math.Sin(th))
	}
}

func (refKernel) PhasorDot(rowRe, rowIm []float64, theta0, dTheta float64) (re, im float64) {
	// Mirrors the fillFreqRamp + product-sum reference path of the FD
	// super-resolution solver: reseeded unit-phasor recurrence, scalar
	// complex accumulate.
	rRe, rIm := math.Cos(dTheta), math.Sin(dTheta)
	var pRe, pIm float64
	for k := range rowRe {
		if k%PhasorReseed == 0 {
			th := theta0 + float64(k)*dTheta
			pRe, pIm = math.Cos(th), math.Sin(th)
		}
		re += rowRe[k]*pRe - rowIm[k]*pIm
		im += rowRe[k]*pIm + rowIm[k]*pRe
		pRe, pIm = pRe*rRe-pIm*rIm, pRe*rIm+pIm*rRe
	}
	return re, im
}

func (refKernel) DotSplit(aRe, aIm []float64, w []complex128) (re, im float64) {
	for n := range aRe {
		wRe, wIm := real(w[n]), imag(w[n])
		re += aRe[n]*wRe - aIm[n]*wIm
		im += aRe[n]*wIm + aIm[n]*wRe
	}
	return re, im
}

func (refKernel) SumLog2SNR(re, im []float64, txLin, noiseLin float64) float64 {
	var sumLog float64
	for k := range re {
		p := re[k]*re[k] + im[k]*im[k]
		snr := txLin * p / noiseLin
		sumLog += math.Log2(1 + snr)
	}
	return sumLog
}

func (refKernel) AmpFromDB(lossDB float64) float64 {
	return math.Pow(10, -lossDB/20)
}

// ---------------------------------------------------------------------------
// Planar kernel: the same contracts on restructured loops. Phasor sweeps
// run four independent chains advanced by e^{j4Δθ} — breaking the serial
// complex-multiply dependency that bounds the reference recurrence — and
// the log reduction folds 1+SNR terms into running products, trading one
// Log2 per subcarrier for one multiply. Re-seeding stays on the same
// PhasorReseed grid, so drift bounds are unchanged (the chains take 4×
// fewer steps between seeds, tightening them if anything). fmadd compiles
// to a plain multiply-add by default and to a hardware FMA under
// GOAMD64=v3 (the amd64.v3 build tag); both stay well inside the 1e-12
// equivalence pin.
// ---------------------------------------------------------------------------

type planarKernel struct{}

func (planarKernel) Name() string { return "planar" }

// seedChains4 returns the four chain phasors c·e^{j(θ₀+iΔθ)}, i = 0..3.
func seedChains4(cRe, cIm, theta0, dTheta float64) (q0r, q0i, q1r, q1i, q2r, q2i, q3r, q3i float64) {
	si, sr := math.Sincos(dTheta)
	s0, c0 := math.Sincos(theta0)
	q0r, q0i = cRe*c0-cIm*s0, cRe*s0+cIm*c0
	q1r, q1i = q0r*sr-q0i*si, q0r*si+q0i*sr
	q2r, q2i = q1r*sr-q1i*si, q1r*si+q1i*sr
	q3r, q3i = q2r*sr-q2i*si, q2r*si+q2i*sr
	return
}

func (planarKernel) PhasorRampAxpy(dstRe, dstIm []float64, cRe, cIm, theta0, dTheta float64) {
	n := len(dstRe)
	s4, c4 := math.Sincos(4 * dTheta)
	for b := 0; b < n; b += PhasorReseed {
		end := b + PhasorReseed
		if end > n {
			end = n
		}
		q0r, q0i, q1r, q1i, q2r, q2i, q3r, q3i := seedChains4(cRe, cIm, theta0+float64(b)*dTheta, dTheta)
		k := b
		for ; k+3 < end; k += 4 {
			dstRe[k] += q0r
			dstIm[k] += q0i
			dstRe[k+1] += q1r
			dstIm[k+1] += q1i
			dstRe[k+2] += q2r
			dstIm[k+2] += q2i
			dstRe[k+3] += q3r
			dstIm[k+3] += q3i
			q0r, q0i = fmadd(q0r, c4, -q0i*s4), fmadd(q0r, s4, q0i*c4)
			q1r, q1i = fmadd(q1r, c4, -q1i*s4), fmadd(q1r, s4, q1i*c4)
			q2r, q2i = fmadd(q2r, c4, -q2i*s4), fmadd(q2r, s4, q2i*c4)
			q3r, q3i = fmadd(q3r, c4, -q3i*s4), fmadd(q3r, s4, q3i*c4)
		}
		// Tail (< 4 left): the chains already hold the values for k..k+2.
		if k < end {
			dstRe[k] += q0r
			dstIm[k] += q0i
		}
		if k+1 < end {
			dstRe[k+1] += q1r
			dstIm[k+1] += q1i
		}
		if k+2 < end {
			dstRe[k+2] += q2r
			dstIm[k+2] += q2i
		}
	}
}

func (planarKernel) PhasorFill(dstRe, dstIm []float64, theta0, dTheta float64) {
	n := len(dstRe)
	s4, c4 := math.Sincos(4 * dTheta)
	for b := 0; b < n; b += PhasorReseed {
		end := b + PhasorReseed
		if end > n {
			end = n
		}
		q0r, q0i, q1r, q1i, q2r, q2i, q3r, q3i := seedChains4(1, 0, theta0+float64(b)*dTheta, dTheta)
		k := b
		for ; k+3 < end; k += 4 {
			dstRe[k], dstIm[k] = q0r, q0i
			dstRe[k+1], dstIm[k+1] = q1r, q1i
			dstRe[k+2], dstIm[k+2] = q2r, q2i
			dstRe[k+3], dstIm[k+3] = q3r, q3i
			q0r, q0i = fmadd(q0r, c4, -q0i*s4), fmadd(q0r, s4, q0i*c4)
			q1r, q1i = fmadd(q1r, c4, -q1i*s4), fmadd(q1r, s4, q1i*c4)
			q2r, q2i = fmadd(q2r, c4, -q2i*s4), fmadd(q2r, s4, q2i*c4)
			q3r, q3i = fmadd(q3r, c4, -q3i*s4), fmadd(q3r, s4, q3i*c4)
		}
		if k < end {
			dstRe[k], dstIm[k] = q0r, q0i
		}
		if k+1 < end {
			dstRe[k+1], dstIm[k+1] = q1r, q1i
		}
		if k+2 < end {
			dstRe[k+2], dstIm[k+2] = q2r, q2i
		}
	}
}

func (planarKernel) PhasorFillCmplx(dst []complex128, theta0, dTheta float64) {
	n := len(dst)
	s4, c4 := math.Sincos(4 * dTheta)
	for b := 0; b < n; b += PhasorReseed {
		end := b + PhasorReseed
		if end > n {
			end = n
		}
		q0r, q0i, q1r, q1i, q2r, q2i, q3r, q3i := seedChains4(1, 0, theta0+float64(b)*dTheta, dTheta)
		k := b
		for ; k+3 < end; k += 4 {
			dst[k] = complex(q0r, q0i)
			dst[k+1] = complex(q1r, q1i)
			dst[k+2] = complex(q2r, q2i)
			dst[k+3] = complex(q3r, q3i)
			q0r, q0i = fmadd(q0r, c4, -q0i*s4), fmadd(q0r, s4, q0i*c4)
			q1r, q1i = fmadd(q1r, c4, -q1i*s4), fmadd(q1r, s4, q1i*c4)
			q2r, q2i = fmadd(q2r, c4, -q2i*s4), fmadd(q2r, s4, q2i*c4)
			q3r, q3i = fmadd(q3r, c4, -q3i*s4), fmadd(q3r, s4, q3i*c4)
		}
		if k < end {
			dst[k] = complex(q0r, q0i)
		}
		if k+1 < end {
			dst[k+1] = complex(q1r, q1i)
		}
		if k+2 < end {
			dst[k+2] = complex(q2r, q2i)
		}
	}
}

func (planarKernel) PhasorDot(rowRe, rowIm []float64, theta0, dTheta float64) (re, im float64) {
	n := len(rowRe)
	s4, c4 := math.Sincos(4 * dTheta)
	var a0r, a0i, a1r, a1i, a2r, a2i, a3r, a3i float64
	for b := 0; b < n; b += PhasorReseed {
		end := b + PhasorReseed
		if end > n {
			end = n
		}
		q0r, q0i, q1r, q1i, q2r, q2i, q3r, q3i := seedChains4(1, 0, theta0+float64(b)*dTheta, dTheta)
		k := b
		for ; k+3 < end; k += 4 {
			a0r += rowRe[k]*q0r - rowIm[k]*q0i
			a0i += rowRe[k]*q0i + rowIm[k]*q0r
			a1r += rowRe[k+1]*q1r - rowIm[k+1]*q1i
			a1i += rowRe[k+1]*q1i + rowIm[k+1]*q1r
			a2r += rowRe[k+2]*q2r - rowIm[k+2]*q2i
			a2i += rowRe[k+2]*q2i + rowIm[k+2]*q2r
			a3r += rowRe[k+3]*q3r - rowIm[k+3]*q3i
			a3i += rowRe[k+3]*q3i + rowIm[k+3]*q3r
			q0r, q0i = fmadd(q0r, c4, -q0i*s4), fmadd(q0r, s4, q0i*c4)
			q1r, q1i = fmadd(q1r, c4, -q1i*s4), fmadd(q1r, s4, q1i*c4)
			q2r, q2i = fmadd(q2r, c4, -q2i*s4), fmadd(q2r, s4, q2i*c4)
			q3r, q3i = fmadd(q3r, c4, -q3i*s4), fmadd(q3r, s4, q3i*c4)
		}
		if k < end {
			a0r += rowRe[k]*q0r - rowIm[k]*q0i
			a0i += rowRe[k]*q0i + rowIm[k]*q0r
		}
		if k+1 < end {
			a1r += rowRe[k+1]*q1r - rowIm[k+1]*q1i
			a1i += rowRe[k+1]*q1i + rowIm[k+1]*q1r
		}
		if k+2 < end {
			a2r += rowRe[k+2]*q2r - rowIm[k+2]*q2i
			a2i += rowRe[k+2]*q2i + rowIm[k+2]*q2r
		}
	}
	return (a0r + a1r) + (a2r + a3r), (a0i + a1i) + (a2i + a3i)
}

func (planarKernel) DotSplit(aRe, aIm []float64, w []complex128) (re, im float64) {
	// Two accumulator pairs: steering rows are short (N = 8 typically), so
	// this is latency-, not throughput-, bound.
	var s0r, s0i, s1r, s1i float64
	n := len(aRe)
	k := 0
	for ; k+1 < n; k += 2 {
		w0r, w0i := real(w[k]), imag(w[k])
		w1r, w1i := real(w[k+1]), imag(w[k+1])
		s0r += aRe[k]*w0r - aIm[k]*w0i
		s0i += aRe[k]*w0i + aIm[k]*w0r
		s1r += aRe[k+1]*w1r - aIm[k+1]*w1i
		s1i += aRe[k+1]*w1i + aIm[k+1]*w1r
	}
	if k < n {
		wr, wi := real(w[k]), imag(w[k])
		s0r += aRe[k]*wr - aIm[k]*wi
		s0i += aRe[k]*wi + aIm[k]*wr
	}
	return s0r + s1r, s0i + s1i
}

func (planarKernel) SumLog2SNR(re, im []float64, txLin, noiseLin float64) float64 {
	// Product form: Σ log2(1+s_k) = log2 Π (1+s_k). Four running products
	// renormalized by 2^±256 before they can overflow (1+SNR ≥ 1, so the
	// products only grow) collapse 64 Log2 calls into one plus a multiply
	// per subcarrier. Relative product error stays ~n·ε, far inside the
	// 1e-12 pin.
	scale := txLin / noiseLin
	p0, p1, p2, p3 := 1.0, 1.0, 1.0, 1.0
	exp := 0
	n := len(re)
	k := 0
	for ; k+3 < n; k += 4 {
		p0 *= 1 + scale*fmadd(re[k], re[k], im[k]*im[k])
		p1 *= 1 + scale*fmadd(re[k+1], re[k+1], im[k+1]*im[k+1])
		p2 *= 1 + scale*fmadd(re[k+2], re[k+2], im[k+2]*im[k+2])
		p3 *= 1 + scale*fmadd(re[k+3], re[k+3], im[k+3]*im[k+3])
		if p0 >= 0x1p256 {
			p0 *= 0x1p-256
			exp += 256
		}
		if p1 >= 0x1p256 {
			p1 *= 0x1p-256
			exp += 256
		}
		if p2 >= 0x1p256 {
			p2 *= 0x1p-256
			exp += 256
		}
		if p3 >= 0x1p256 {
			p3 *= 0x1p-256
			exp += 256
		}
	}
	for ; k < n; k++ {
		p0 *= 1 + scale*fmadd(re[k], re[k], im[k]*im[k])
		if p0 >= 0x1p256 {
			p0 *= 0x1p-256
			exp += 256
		}
	}
	// Combine through Frexp so the pairwise products cannot overflow.
	f0, e0 := math.Frexp(p0)
	f1, e1 := math.Frexp(p1)
	f2, e2 := math.Frexp(p2)
	f3, e3 := math.Frexp(p3)
	return math.Log2((f0*f1)*(f2*f3)) + float64(exp+e0+e1+e2+e3)
}

func (planarKernel) AmpFromDB(lossDB float64) float64 {
	// exp(−loss·ln10/20): one exponential instead of Pow's log/exp round
	// trip; agrees with the reference to ~1 ulp of the exponent scaling.
	return math.Exp(lossDB * -lnTenOver20)
}

// lnTenOver20 is ln(10)/20, the dB-amplitude-to-natural-log factor.
const lnTenOver20 = 0.11512925464970228
