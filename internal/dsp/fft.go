// Package dsp provides the signal-processing primitives the mmReliable
// stack needs: an in-place radix-2 FFT, sinc interpolation kernels,
// least-squares polynomial fitting, smoothing filters, and dB/linear
// conversions. Go has no DSP standard library, so everything here is
// implemented from scratch on math/cmplx.
package dsp

import (
	"fmt"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two ≥ n (and 1 for n ≤ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the forward discrete Fourier transform of x in place.
// len(x) must be a power of two. The convention is
//
//	X[k] = Σ_n x[n]·e^{−j2πkn/N}
//
// with no scaling on the forward transform.
func FFT(x []complex128) error {
	return fftDir(x, false)
}

// IFFT computes the inverse DFT of x in place, scaling by 1/N so that
// IFFT(FFT(x)) == x.
func IFFT(x []complex128) error {
	if err := fftDir(x, true); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

func fftDir(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	p := planFor(n)
	// Bit-reversal permutation from the plan's precomputed table.
	for i, j := range p.bitrev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies. Twiddles come from the plan's
	// table (stage `size` reads every (n/size)-th entry) instead of the
	// old multiplicative recurrence w *= wBase, which accumulated O(N·ε)
	// phase error across a stage. The inverse transform conjugates the
	// table entry, which is exact.
	tw := p.twiddle
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k, ti := 0, 0; k < half; k, ti = k+1, ti+stride {
				w := tw[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// FFTShift rotates the zero-frequency bin to the center of the spectrum,
// returning a new slice. For even N the Nyquist bin lands at index 0 of the
// output's left half, matching the usual numpy convention.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// IFFTShift undoes FFTShift.
func IFFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := n / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}
