package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownTransforms(t *testing.T) {
	// Impulse → flat spectrum.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", k, v)
		}
	}
	// DC → impulse at bin 0.
	y := []complex128{1, 1, 1, 1}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-4) > 1e-12 {
		t.Fatalf("DC bin = %v", y[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(y[k]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", k, y[k])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*bin*float64(i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k := range x {
		want := 0.0
		if k == bin {
			want = n
		}
		if math.Abs(cmplx.Abs(x[k])-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want %g", k, cmplx.Abs(x[k]), want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 16, 128, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d round-trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 256
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", freqEnergy/float64(n), timeEnergy)
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 32
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		sum[i] = 2*a[i] + 3i*b[i]
	}
	if err := FFT(a); err != nil {
		t.Fatal(err)
	}
	if err := FFT(b); err != nil {
		t.Fatal(err)
	}
	if err := FFT(sum); err != nil {
		t.Fatal(err)
	}
	for i := range sum {
		want := 2*a[i] + 3i*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity broken at %d", i)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("expected error for length 12")
	}
	if err := IFFT(make([]complex128, 0)); err == nil {
		t.Fatal("expected error for length 0")
	}
}

func TestFFTShiftRoundTrip(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i), 0)
		}
		y := IFFTShift(FFTShift(x))
		for i := range x {
			if y[i] != x[i] {
				t.Fatalf("n=%d shift round-trip broken at %d: %v", n, i, y)
			}
		}
	}
}

func TestFFTShiftCentersDC(t *testing.T) {
	x := []complex128{10, 1, 2, 3} // DC = index 0
	y := FFTShift(x)
	if y[2] != 10 {
		t.Fatalf("DC not centered: %v", y)
	}
}

func TestPow2Helpers(t *testing.T) {
	cases := []struct {
		n    int
		is   bool
		next int
	}{
		{1, true, 1}, {2, true, 2}, {3, false, 4}, {4, true, 4},
		{5, false, 8}, {1023, false, 1024}, {1024, true, 1024}, {0, false, 1},
	}
	for _, c := range cases {
		if IsPow2(c.n) != c.is {
			t.Errorf("IsPow2(%d) = %v", c.n, !c.is)
		}
		if got := NextPow2(c.n); got != c.next {
			t.Errorf("NextPow2(%d) = %d want %d", c.n, got, c.next)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(9))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FFT(x)
	}
}
