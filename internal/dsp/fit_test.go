package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 2 − 3x + 0.5x²
	want := []float64{2, -3, 0.5}
	x := []float64{-2, -1, 0, 1, 2, 3}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = PolyEval(want, x[i])
	}
	c, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Fatalf("c = %v want %v", c, want)
		}
	}
}

func TestPolyFitNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	truth := []float64{1, 0.2, -0.05}
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / 10
		y[i] = PolyEval(truth, x[i]) + 0.01*rng.NormFloat64()
	}
	c, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(c[i]-truth[i]) > 0.05 {
			t.Fatalf("coefficient %d: %g want %g", i, c[i], truth[i])
		}
	}
}

func TestPolyFitUnderdetermined(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Fatal("expected error: 2 points cannot fit a quadratic")
	}
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("expected error on negative degree")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	c := []float64{1, 2, 3} // 1 + 2x + 3x²
	if got := PolyEval(c, 2); got != 17 {
		t.Fatalf("PolyEval = %g", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Fatalf("PolyEval(nil) = %g", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Update(5)
	}
	if math.Abs(e.Value()-5) > 1e-9 {
		t.Fatalf("EWMA did not converge: %g", e.Value())
	}
}

func TestEWMAFirstSampleSeeds(t *testing.T) {
	e := NewEWMA(0.1)
	if e.Started() {
		t.Fatal("EWMA started before any update")
	}
	if got := e.Update(42); got != 42 {
		t.Fatalf("first update = %g", got)
	}
	if !e.Started() {
		t.Fatal("EWMA not started after update")
	}
	e.Reset()
	if e.Started() || e.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %g should panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

// Property: EWMA output always lies within the min/max envelope of its
// inputs.
func TestEWMAEnvelopeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewEWMA(0.4)
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			e.Update(v)
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSlopePerSample(t *testing.T) {
	// Exact line y = 3 − 2i.
	y := []float64{3, 1, -1, -3, -5}
	if got := SlopePerSample(y); math.Abs(got+2) > 1e-12 {
		t.Fatalf("slope = %g want -2", got)
	}
	if got := SlopePerSample([]float64{7}); got != 0 {
		t.Fatalf("single sample slope = %g", got)
	}
	if got := SlopePerSample(nil); got != 0 {
		t.Fatalf("nil slope = %g", got)
	}
	// Constant series → slope 0.
	if got := SlopePerSample([]float64{4, 4, 4, 4}); math.Abs(got) > 1e-12 {
		t.Fatalf("constant slope = %g", got)
	}
}

func TestSincProperties(t *testing.T) {
	if Sinc(0) != 1 {
		t.Fatal("Sinc(0) != 1")
	}
	for n := 1; n <= 10; n++ {
		if math.Abs(Sinc(float64(n))) > 1e-12 {
			t.Fatalf("Sinc(%d) = %g, want 0", n, Sinc(float64(n)))
		}
		if math.Abs(Sinc(-float64(n))) > 1e-12 {
			t.Fatalf("Sinc(-%d) != 0", n)
		}
	}
	// Even symmetry.
	for _, x := range []float64{0.3, 1.7, 2.5} {
		if math.Abs(Sinc(x)-Sinc(-x)) > 1e-15 {
			t.Fatalf("Sinc not even at %g", x)
		}
	}
}

func TestSincVector(t *testing.T) {
	// Path at exactly one sample delay: kernel peaks at index 1.
	bw := 400e6
	ts := 1 / bw
	v := SincVector(8, bw, ts, ts)
	if math.Abs(real(v[1])-1) > 1e-12 {
		t.Fatalf("peak not at index 1: %v", v[:3])
	}
	for i, x := range v {
		if i != 1 && math.Abs(real(x)) > 1e-9 {
			t.Fatalf("non-zero off-peak sample %d: %g", i, real(x))
		}
	}
	// Fractional delay spreads energy but keeps peak closest to the delay.
	v2 := SincVector(8, bw, ts, 1.4*ts)
	if math.Abs(real(v2[1])) < math.Abs(real(v2[4])) {
		t.Fatal("fractional-delay kernel not centered near sample 1")
	}
}

func TestRaisedCosine(t *testing.T) {
	if RaisedCosine(0, 0.25) != 1 {
		t.Fatal("RC(0) != 1")
	}
	if math.Abs(RaisedCosine(0.7, 0)-Sinc(0.7)) > 1e-15 {
		t.Fatal("RC with beta=0 should equal Sinc")
	}
	// The singular point x = 1/(2β) must be finite.
	got := RaisedCosine(2, 0.25)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("RC singular point not handled: %g", got)
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(9)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[8]) > 1e-12 {
		t.Fatalf("Hann endpoints not ~0: %g %g", w[0], w[8])
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Fatalf("Hann center = %g", w[4])
	}
	if got := HannWindow(1); got[0] != 1 {
		t.Fatalf("HannWindow(1) = %v", got)
	}
}

func TestConversions(t *testing.T) {
	if math.Abs(DB(100)-20) > 1e-12 {
		t.Fatalf("DB(100) = %g", DB(100))
	}
	if math.Abs(FromDB(3)-1.9952623) > 1e-6 {
		t.Fatalf("FromDB(3) = %g", FromDB(3))
	}
	if math.Abs(AmpDB(10)-20) > 1e-12 {
		t.Fatalf("AmpDB(10) = %g", AmpDB(10))
	}
	if math.Abs(AmpFromDB(-6)-0.5011872) > 1e-6 {
		t.Fatalf("AmpFromDB(-6) = %g", AmpFromDB(-6))
	}
	// Round trips.
	for _, v := range []float64{0.1, 1, 42} {
		if math.Abs(FromDB(DB(v))-v) > 1e-12*v {
			t.Fatalf("dB round trip failed for %g", v)
		}
	}
	if !math.IsInf(DB(0), -1) {
		t.Fatal("DB(0) should be -Inf")
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, -math.Pi},
		{-math.Pi, -math.Pi}, // [−π, π) convention
		{3 * math.Pi, -math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
		{7, 7 - 2*math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%g) = %g want %g", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}
