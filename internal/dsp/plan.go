package dsp

import (
	"math"
	"math/bits"
	"sync"
)

// fftPlan holds the precomputed, read-only tables for one FFT size: the
// bit-reversal permutation and the forward twiddle factors
//
//	twiddle[k] = e^{−j2πk/N},  k = 0..N/2−1.
//
// Every butterfly reads its twiddle straight from this table (stage `size`
// uses stride N/size), so each factor carries only the ~1 ulp error of one
// math.Sincos call. The multiplicative recurrence this replaces
// (w *= wBase) compounded rounding every iteration and accumulated O(N·ε)
// phase drift in the last butterflies of large transforms.
type fftPlan struct {
	n       int
	bitrev  []int32
	twiddle []complex128
}

// planCache memoizes plans by FFT size. Plans are immutable after
// construction, so concurrent FFTs on different goroutines share them
// freely — this is what makes the DSP hot path safe and allocation-free
// under the parallel experiment runner.
var planCache sync.Map // int → *fftPlan

// planFor returns the (possibly shared) plan for size n. n must be a
// power of two ≥ 2.
func planFor(n int) *fftPlan {
	if v, ok := planCache.Load(n); ok {
		return v.(*fftPlan)
	}
	v, _ := planCache.LoadOrStore(n, newPlan(n))
	return v.(*fftPlan)
}

func newPlan(n int) *fftPlan {
	p := &fftPlan{
		n:       n,
		bitrev:  make([]int32, n),
		twiddle: make([]complex128, n/2),
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := range p.bitrev {
		p.bitrev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	return p
}
