package dsp

import "math"

// Sinc returns the normalized sinc function sin(πx)/(πx), with Sinc(0) = 1.
// This is the interpolation kernel of a band-limited channel sounder: a path
// at delay τ observed through bandwidth B appears in the sampled CIR as
// α·sinc(B(nTs − τ)) (Eq. 22 of the paper).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// SincVector samples α·sinc(B(nTs − τ)) for n = 0..n-1 with unit α, i.e. the
// dictionary column for a path at delay tau seconds, observed with bandwidth
// bw Hz at sample period ts seconds.
func SincVector(n int, bw, ts, tau float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(Sinc(bw*(float64(i)*ts-tau)), 0)
	}
	return out
}

// RaisedCosine returns the raised-cosine kernel with roll-off beta at x
// (in symbol periods). beta = 0 degenerates to Sinc.
func RaisedCosine(x, beta float64) float64 {
	if beta == 0 {
		return Sinc(x)
	}
	den := 1 - math.Pow(2*beta*x, 2)
	if math.Abs(den) < 1e-12 {
		// L'Hôpital limit at x = ±1/(2β).
		return (math.Pi / 4) * Sinc(1/(2*beta))
	}
	return Sinc(x) * math.Cos(math.Pi*beta*x) / den
}

// HannWindow returns an n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}
