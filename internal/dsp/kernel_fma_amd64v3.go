//go:build amd64.v3

package dsp

import "math"

// fmadd returns fma(a, b, c): GOAMD64=v3 guarantees hardware FMA, so
// math.FMA compiles to a single instruction with no funnel through the
// software fallback.
func fmadd(a, b, c float64) float64 { return math.FMA(a, b, c) }
