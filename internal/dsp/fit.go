package dsp

import (
	"errors"
	"fmt"
	"math"
)

// ErrFit reports an ill-posed fitting problem.
var ErrFit = errors.New("dsp: ill-posed fit")

// PolyFit fits a polynomial of the given degree to the points (x[i], y[i])
// in the least-squares sense and returns the coefficients lowest order
// first: p(x) = c[0] + c[1]x + … + c[degree]x^degree.
//
// The tracker uses quadratic fits (degree 2) to smooth noisy per-beam power
// measurements before inverting the beam pattern (§6.1 of the paper).
func PolyFit(x, y []float64, degree int) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("dsp: PolyFit length mismatch %d vs %d", len(x), len(y))
	}
	if degree < 0 {
		return nil, fmt.Errorf("dsp: negative degree %d", degree)
	}
	n := degree + 1
	if len(x) < n {
		return nil, fmt.Errorf("%w: %d points for degree %d", ErrFit, len(x), degree)
	}
	// Normal equations on the Vandermonde system: (VᵀV)c = Vᵀy.
	vtv := make([][]float64, n)
	for i := range vtv {
		vtv[i] = make([]float64, n)
	}
	vty := make([]float64, n)
	for k := range x {
		pow := make([]float64, n)
		p := 1.0
		for i := 0; i < n; i++ {
			pow[i] = p
			p *= x[k]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vtv[i][j] += pow[i] * pow[j]
			}
			vty[i] += pow[i] * y[k]
		}
	}
	c, err := solveReal(vtv, vty)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// PolyEval evaluates the polynomial with coefficients c (lowest order first)
// at x.
func PolyEval(c []float64, x float64) float64 {
	var y float64
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// solveReal solves the small dense real system A·x = b with partial
// pivoting. A and b are modified.
func solveReal(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, ErrFit
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// EWMA is an exponentially weighted moving average with a forgetting
// factor, used to smooth per-beam power time series. The zero value is
// ready to use after SetAlpha (or use NewEWMA).
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]: the weight
// given to each new observation. alpha = 1 means no smoothing.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("dsp: EWMA alpha %g out of (0, 1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds a new observation into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Started reports whether any observation has been folded in.
func (e *EWMA) Started() bool { return e.started }

// Reset clears the average.
func (e *EWMA) Reset() { e.value, e.started = 0, false }

// SlopePerSample returns the least-squares slope of y against its sample
// index, in y-units per sample. The blockage detector uses this on recent
// per-beam power (dB) history: a steep negative slope marks a blockage
// onset, a gentle one marks mobility (§4.1).
func SlopePerSample(y []float64) float64 {
	n := len(y)
	if n < 2 {
		return 0
	}
	// Closed form for x = 0..n-1.
	var sy, sxy float64
	for i, v := range y {
		sy += v
		sxy += float64(i) * v
	}
	fn := float64(n)
	sx := fn * (fn - 1) / 2
	sxx := (fn - 1) * fn * (2*fn - 1) / 6
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (fn*sxy - sx*sy) / den
}
