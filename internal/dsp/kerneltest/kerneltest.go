// Package kerneltest is the shared property-test harness for DSP kernel
// equivalence: any (reference, candidate) kernel pair registers into
// RunEquivalence and inherits the ≤1e-12 pin across the full operation
// surface — phasor ramps at carrier-scale seed phases, steering fills,
// candidate correlations, planar dots, and the log-SNR reduction with
// overflow-range inputs. The dsp package runs it for every kernel returned
// by dsp.Kernels() (under -race in CI), so a future GOAMD64 or assembly
// variant gets the same contract for free by joining that list.
package kerneltest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mmreliable/internal/dsp"
)

// Tol is the maximum relative disagreement allowed between a kernel and the
// reference on any operation.
const Tol = 1e-12

// lengths exercises the blocked/unrolled loop structure of fast kernels:
// empty, sub-unroll tails, one short of / exactly at / one past the
// PhasorReseed re-seed boundary, and exact multiples of it.
var lengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 127, 128, 192, 200}

// phases covers benign baseband angles up to the edge of the kernels'
// documented phase domain (|θ₀| + n·|Δθ| ≲ 10⁴): the factored channel
// kernel seeds with −2πf₀τ ramps of a few hundred radians and folds the
// ±10⁴-radian carrier phase into the coefficient, where it belongs — at
// that magnitude one ulp of the phase argument is itself ~2e-12 rad, more
// than the equivalence pin.
var phases = []float64{0, 0.25, -1.3, math.Pi, 980.25, -3333.333}

// steps covers DC (Δθ = 0), typical subcarrier ramps, a step that wraps
// past π between elements, and sign flips.
var steps = []float64{0, 1e-3, -0.098, 0.47, -2.9, 2 * math.Pi / 64}

// RunEquivalence pins kernel k against ref on every operation. Inputs are
// deterministic (seeded here), so failures reproduce exactly.
func RunEquivalence(t *testing.T, ref, k dsp.Kernel) {
	t.Helper()
	rng := rand.New(rand.NewSource(0x5eed))
	t.Run(fmt.Sprintf("%s-vs-%s", k.Name(), ref.Name()), func(t *testing.T) {
		t.Run("PhasorRampAxpy", func(t *testing.T) { testPhasorRampAxpy(t, ref, k, rng) })
		t.Run("PhasorFill", func(t *testing.T) { testPhasorFill(t, ref, k) })
		t.Run("PhasorFillCmplx", func(t *testing.T) { testPhasorFillCmplx(t, ref, k) })
		t.Run("PhasorDot", func(t *testing.T) { testPhasorDot(t, ref, k, rng) })
		t.Run("DotSplit", func(t *testing.T) { testDotSplit(t, ref, k, rng) })
		t.Run("SumLog2SNR", func(t *testing.T) { testSumLog2SNR(t, ref, k, rng) })
		t.Run("AmpFromDB", func(t *testing.T) { testAmpFromDB(t, ref, k) })
	})
}

// relDiff returns |a−b| relative to a magnitude scale (floored at 1 so
// near-zero outputs are compared absolutely).
func relDiff(a, b, scale float64) float64 {
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) / scale
}

// pinVecs compares two planar vectors against the reference one's maximum
// magnitude.
func pinVecs(t *testing.T, what string, wantRe, wantIm, gotRe, gotIm []float64) {
	t.Helper()
	scale := 0.0
	for i := range wantRe {
		if a := math.Abs(wantRe[i]); a > scale {
			scale = a
		}
		if a := math.Abs(wantIm[i]); a > scale {
			scale = a
		}
	}
	for i := range wantRe {
		if d := relDiff(wantRe[i], gotRe[i], scale); d > Tol {
			t.Fatalf("%s: re[%d] = %g, want %g (rel %g)", what, i, gotRe[i], wantRe[i], d)
		}
		if d := relDiff(wantIm[i], gotIm[i], scale); d > Tol {
			t.Fatalf("%s: im[%d] = %g, want %g (rel %g)", what, i, gotIm[i], wantIm[i], d)
		}
	}
}

func testPhasorRampAxpy(t *testing.T, ref, k dsp.Kernel, rng *rand.Rand) {
	t.Helper()
	for _, n := range lengths {
		for _, th0 := range phases {
			for _, dth := range steps {
				cRe, cIm := rng.NormFloat64()*1e-4, rng.NormFloat64()*1e-4
				aRe, aIm := make([]float64, n), make([]float64, n)
				bRe, bIm := make([]float64, n), make([]float64, n)
				for i := 0; i < n; i++ {
					v, w := rng.NormFloat64()*1e-4, rng.NormFloat64()*1e-4
					aRe[i], aIm[i] = v, w
					bRe[i], bIm[i] = v, w
				}
				ref.PhasorRampAxpy(aRe, aIm, cRe, cIm, th0, dth)
				k.PhasorRampAxpy(bRe, bIm, cRe, cIm, th0, dth)
				pinVecs(t, fmt.Sprintf("axpy n=%d θ0=%g Δθ=%g", n, th0, dth), aRe, aIm, bRe, bIm)
			}
		}
	}
}

func testPhasorFill(t *testing.T, ref, k dsp.Kernel) {
	t.Helper()
	for _, n := range lengths {
		for _, th0 := range phases {
			for _, dth := range steps {
				aRe, aIm := make([]float64, n), make([]float64, n)
				bRe, bIm := make([]float64, n), make([]float64, n)
				ref.PhasorFill(aRe, aIm, th0, dth)
				k.PhasorFill(bRe, bIm, th0, dth)
				pinVecs(t, fmt.Sprintf("fill n=%d θ0=%g Δθ=%g", n, th0, dth), aRe, aIm, bRe, bIm)
			}
		}
	}
}

func testPhasorFillCmplx(t *testing.T, ref, k dsp.Kernel) {
	t.Helper()
	for _, n := range lengths {
		for _, th0 := range phases {
			for _, dth := range steps {
				a := make([]complex128, n)
				b := make([]complex128, n)
				ref.PhasorFillCmplx(a, th0, dth)
				k.PhasorFillCmplx(b, th0, dth)
				for i := range a {
					if d := relDiff(real(a[i]), real(b[i]), 1); d > Tol {
						t.Fatalf("fillcmplx n=%d θ0=%g Δθ=%g: re[%d] rel %g", n, th0, dth, i, d)
					}
					if d := relDiff(imag(a[i]), imag(b[i]), 1); d > Tol {
						t.Fatalf("fillcmplx n=%d θ0=%g Δθ=%g: im[%d] rel %g", n, th0, dth, i, d)
					}
				}
			}
		}
	}
}

func testPhasorDot(t *testing.T, ref, k dsp.Kernel, rng *rand.Rand) {
	t.Helper()
	for _, n := range lengths {
		for _, th0 := range phases {
			for _, dth := range steps {
				rowRe, rowIm := make([]float64, n), make([]float64, n)
				scale := 0.0
				for i := 0; i < n; i++ {
					rowRe[i], rowIm[i] = rng.NormFloat64(), rng.NormFloat64()
					scale += math.Hypot(rowRe[i], rowIm[i])
				}
				aRe, aIm := ref.PhasorDot(rowRe, rowIm, th0, dth)
				bRe, bIm := k.PhasorDot(rowRe, rowIm, th0, dth)
				if d := relDiff(aRe, bRe, scale); d > Tol {
					t.Fatalf("dot n=%d θ0=%g Δθ=%g: re %g vs %g (rel %g)", n, th0, dth, bRe, aRe, d)
				}
				if d := relDiff(aIm, bIm, scale); d > Tol {
					t.Fatalf("dot n=%d θ0=%g Δθ=%g: im %g vs %g (rel %g)", n, th0, dth, bIm, aIm, d)
				}
			}
		}
	}
}

func testDotSplit(t *testing.T, ref, k dsp.Kernel, rng *rand.Rand) {
	t.Helper()
	for _, n := range lengths {
		aRe, aIm := make([]float64, n), make([]float64, n)
		w := make([]complex128, n)
		scale := 0.0
		for i := 0; i < n; i++ {
			aRe[i], aIm[i] = rng.NormFloat64(), rng.NormFloat64()
			w[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			scale += math.Hypot(aRe[i], aIm[i])
		}
		wantRe, wantIm := ref.DotSplit(aRe, aIm, w)
		gotRe, gotIm := k.DotSplit(aRe, aIm, w)
		if d := relDiff(wantRe, gotRe, scale); d > Tol {
			t.Fatalf("dotsplit n=%d: re %g vs %g (rel %g)", n, gotRe, wantRe, d)
		}
		if d := relDiff(wantIm, gotIm, scale); d > Tol {
			t.Fatalf("dotsplit n=%d: im %g vs %g (rel %g)", n, gotIm, wantIm, d)
		}
	}
}

func testSumLog2SNR(t *testing.T, ref, k dsp.Kernel, rng *rand.Rand) {
	t.Helper()
	// ampScale sweeps the per-subcarrier SNR from deep outage to ~1e12 —
	// the last making every 1+SNR term huge, so a product-form fast path
	// must renormalize to stay finite where the reference's per-term Log2
	// trivially does.
	for _, n := range lengths {
		for _, ampScale := range []float64{0, 1e-9, 1e-4, 2.5e-4, 1e2} {
			re, im := make([]float64, n), make([]float64, n)
			for i := 0; i < n; i++ {
				re[i], im[i] = rng.NormFloat64()*ampScale, rng.NormFloat64()*ampScale
			}
			txLin, noiseLin := 31.62, 2.1e-8 // ≈ the default budget's linear terms
			want := ref.SumLog2SNR(re, im, txLin, noiseLin)
			got := k.SumLog2SNR(re, im, txLin, noiseLin)
			if math.IsInf(want, 0) || math.IsNaN(want) {
				t.Fatalf("sumlog n=%d amp=%g: reference not finite: %g", n, ampScale, want)
			}
			if d := relDiff(want, got, math.Abs(want)); d > Tol {
				t.Fatalf("sumlog n=%d amp=%g: %g vs %g (rel %g)", n, ampScale, got, want, d)
			}
		}
	}
}

func testAmpFromDB(t *testing.T, ref, k dsp.Kernel) {
	t.Helper()
	for db := -40.0; db <= 160; db += 2.37 {
		want := ref.AmpFromDB(db)
		got := k.AmpFromDB(db)
		if d := math.Abs(want-got) / want; d > Tol {
			t.Fatalf("ampfromdb %g: %g vs %g (rel %g)", db, got, want, d)
		}
	}
}
