//go:build !amd64.v3

package dsp

// fmadd returns a·b + c with an intermediate rounding. The amd64.v3 build
// (GOAMD64=v3) swaps in the fused version; both stay within the kernels'
// 1e-12 equivalence pin.
func fmadd(a, b, c float64) float64 { return a*b + c }
