// Package seeds centralizes the SplitMix64-based deterministic stream
// derivation used everywhere the repo shards work across goroutines: the
// parallel experiment engine derives per-trial RNG streams from
// (seed, experiment label, trial), and the station serving engine derives
// per-UE session streams from (seed, station label, session id).
//
// The construction is the SplitMix64 finalizer (Steele et al., "Fast
// splittable pseudorandom number generators") folded over the parts: a
// bijective avalanche mix whose output decorrelates even adjacent inputs,
// so (seed, L, 1) and (seed, L, 2) derive unrelated streams — unlike raw
// additive offsets ("seed+161"), which collide as soon as two call sites
// pick overlapping constants. Because a derived stream depends only on the
// identity tuple — never on scheduling order or worker count — any
// computation seeded through this package is byte-identical for any
// sharding.
package seeds

// SplitMix64 is the SplitMix64 finalizer.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix folds the parts into one well-mixed 63-bit stream seed. Each part
// passes through the SplitMix64 finalizer before being folded, so distinct
// (seed, label, trial, sub) tuples map to distinct streams with
// overwhelming probability and no structured collisions.
func Mix(parts ...int64) int64 {
	h := uint64(0x8E5B_D2F0_9D8A_731D)
	for _, p := range parts {
		h = SplitMix64(h ^ uint64(p))
	}
	// math/rand sources take the seed mod 2^63-1; clear the sign bit.
	return int64(h &^ (1 << 63))
}
