package seeds

import "testing"

// TestMixMatchesLegacyDerivation pins the exact values the experiment
// engine produced before the derivation moved into this package: every
// committed figure table depends on these streams, so the refactor must be
// bit-exact.
func TestMixMatchesLegacyDerivation(t *testing.T) {
	legacySplitmix := func(x uint64) uint64 {
		x += 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	legacyMix := func(parts ...int64) int64 {
		h := uint64(0x8E5B_D2F0_9D8A_731D)
		for _, p := range parts {
			h = legacySplitmix(h ^ uint64(p))
		}
		return int64(h &^ (1 << 63))
	}
	cases := [][]int64{
		{1, 154, 0}, {1, 154, 1}, {1, 160, 0}, {7, 191, 12},
		{-3, 901, 5}, {0}, {1 << 40, -9, 3, 3},
	}
	for _, c := range cases {
		if got, want := Mix(c...), legacyMix(c...); got != want {
			t.Fatalf("Mix(%v) = %d, legacy %d", c, got, want)
		}
	}
}

// TestMixProperties checks sign-bit clearing and stream distinctness over
// a dense grid of adjacent tuples.
func TestMixProperties(t *testing.T) {
	seen := map[int64][]int64{}
	for seed := int64(0); seed < 8; seed++ {
		for label := int64(150); label < 170; label++ {
			for trial := int64(0); trial < 64; trial++ {
				v := Mix(seed, label, trial)
				if v < 0 {
					t.Fatalf("Mix(%d,%d,%d) = %d negative", seed, label, trial, v)
				}
				if prev, dup := seen[v]; dup {
					t.Fatalf("collision: %v and (%d,%d,%d) both map to %d", prev, seed, label, trial, v)
				}
				seen[v] = []int64{seed, label, trial}
			}
		}
	}
}
