package seeds

import (
	"math/rand"
	"testing"
)

// TestCountingRandMatchesPlain pins that wrapping adds counting without
// perturbing the stream: a counting rand draws the same values as the
// plain construction used before the service layer existed — existing
// seeds stay reproducible.
func TestCountingRandMatchesPlain(t *testing.T) {
	plain := rand.New(rand.NewSource(42))
	counted, cs := NewCountingRand(42)
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			if a, b := plain.ExpFloat64(), counted.ExpFloat64(); a != b {
				t.Fatalf("draw %d: ExpFloat64 %v != %v", i, b, a)
			}
		case 1:
			if a, b := plain.Intn(17), counted.Intn(17); a != b {
				t.Fatalf("draw %d: Intn %v != %v", i, b, a)
			}
		default:
			if a, b := plain.Float64(), counted.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, b, a)
			}
		}
	}
	if cs.Draws() == 0 {
		t.Fatal("no draws counted")
	}
}

// TestCountingSkipResumes pins the snapshot/restore property: a fresh
// source skipped by Draws() continues the original stream exactly, even
// when the original mixed Int63- and Uint64-consuming calls.
func TestCountingSkipResumes(t *testing.T) {
	orig, ocs := NewCountingRand(7)
	for i := 0; i < 123; i++ {
		switch i % 4 {
		case 0:
			orig.ExpFloat64()
		case 1:
			orig.Intn(9) // may consume multiple draws internally
		case 2:
			orig.Float64()
		default:
			orig.Uint64()
		}
	}
	resumed, rcs := NewCountingRand(7)
	rcs.Skip(ocs.Draws())
	if rcs.Draws() != ocs.Draws() {
		t.Fatalf("Skip did not mirror draw count: %d vs %d", rcs.Draws(), ocs.Draws())
	}
	for i := 0; i < 64; i++ {
		if a, b := orig.ExpFloat64(), resumed.ExpFloat64(); a != b {
			t.Fatalf("post-skip draw %d diverged: %v != %v", i, b, a)
		}
	}
}

// TestCountingSeedResets pins that reseeding zeroes the counter.
func TestCountingSeedResets(t *testing.T) {
	cs := NewCountingSource(1)
	cs.Uint64()
	cs.Int63()
	if cs.Draws() != 2 {
		t.Fatalf("draws = %d, want 2", cs.Draws())
	}
	cs.Seed(1)
	if cs.Draws() != 0 {
		t.Fatalf("draws after Seed = %d, want 0", cs.Draws())
	}
	want := NewCountingSource(1).Uint64()
	if got := cs.Uint64(); got != want {
		t.Fatalf("reseeded stream diverged: %d != %d", got, want)
	}
}
