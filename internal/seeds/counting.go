package seeds

import "math/rand"

// CountingSource wraps a standard math/rand source with a consumed-draw
// counter, making a stream's position serializable: the pair
// (seed, Draws()) fully describes where the stream is, because the stdlib
// rngSource advances by exactly one internal step per Int63 OR Uint64 call
// regardless of which was used. A fresh CountingSource for the same seed,
// fast-forwarded with Skip(draws), continues the stream identically.
//
// The service layer's snapshots record every site's churn-stream draw
// count; after a restore replays to the snapshot frame, the replayed
// counts must match the recorded ones exactly — a cheap, exact check that
// the arrival/session/mobility processes re-consumed precisely the same
// randomness.
type CountingSource struct {
	src   rand.Source64
	draws uint64
}

// NewCountingSource returns a counting wrapper around rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// NewCountingRand returns a *rand.Rand over a fresh counting source plus
// the source itself (for Draws / Skip). The Rand draws the same values as
// rand.New(rand.NewSource(seed)) — wrapping adds counting, not a different
// stream.
func NewCountingRand(seed int64) (*rand.Rand, *CountingSource) {
	cs := NewCountingSource(seed)
	return rand.New(cs), cs
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Draws returns how many values have been consumed since the last seed.
func (c *CountingSource) Draws() uint64 {
	return c.draws
}

// Skip fast-forwards the stream by n draws (n single-step advances of the
// underlying source), as if n values had been consumed and discarded.
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}
