// Package events models link blockage: time-profiles of path occlusion
// with the onset dynamics measured in the paper (per-beam amplitude falling
// ~10 dB within 10 OFDM symbols when a human blocker crosses a beam), plus
// generators for the randomized blockage workloads of §6.2 (durations
// uniform in 100–500 ms).
package events

import (
	"fmt"
	"math/rand"
	"sort"
)

// Event is one blockage episode on one path (or on all paths at once).
type Event struct {
	PathIndex int     // blocked path; ignored when AllPaths is true
	AllPaths  bool    // a body block occluding the whole array
	Start     float64 // onset time (s)
	Duration  float64 // time at full depth, excluding ramps (s)
	DepthDB   float64 // attenuation at full occlusion
	RampTime  float64 // linear onset/offset ramp duration (s)
}

// DefaultRampTime reproduces the measured onset: 10 dB per 10 OFDM symbols
// at 120 kHz subcarrier spacing (symbol ≈ 8.93 µs). A 25 dB-deep blockage
// therefore ramps in ≈ 223 µs.
const DefaultRampTime = 10 * 8.93e-6 // seconds per 10 dB

// RampFor returns a ramp time scaled so the onset slope is 10 dB per
// 10 OFDM symbols regardless of depth.
func RampFor(depthDB float64) float64 {
	if depthDB <= 0 {
		return 0
	}
	return depthDB / 10 * DefaultRampTime
}

// LossAt returns the extra attenuation (dB) this event applies at time t:
// a trapezoid rising over RampTime, holding DepthDB for Duration, then
// falling over RampTime.
func (e Event) LossAt(t float64) float64 {
	dt := t - e.Start
	switch {
	case dt <= 0:
		return 0
	case dt < e.RampTime:
		return e.DepthDB * dt / e.RampTime
	case dt < e.RampTime+e.Duration:
		return e.DepthDB
	case dt < 2*e.RampTime+e.Duration:
		return e.DepthDB * (1 - (dt-e.RampTime-e.Duration)/e.RampTime)
	default:
		return 0
	}
}

// End returns the time at which the event has fully cleared.
func (e Event) End() float64 { return e.Start + 2*e.RampTime + e.Duration }

// Active reports whether the event applies any loss at time t.
func (e Event) Active(t float64) bool { return t > e.Start && t < e.End() }

// Schedule is a set of blockage events over an observation interval.
type Schedule []Event

// LossAt returns the total extra loss (dB) on the given path at time t,
// summing overlapping events. AllPaths events apply to every index.
func (s Schedule) LossAt(pathIndex int, t float64) float64 {
	var loss float64
	for _, e := range s {
		if e.AllPaths || e.PathIndex == pathIndex {
			loss += e.LossAt(t)
		}
	}
	return loss
}

// AnyActive reports whether any event is applying loss at time t.
func (s Schedule) AnyActive(t float64) bool {
	for _, e := range s {
		if e.Active(t) {
			return true
		}
	}
	return false
}

// Sorted returns a copy of the schedule ordered by start time.
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Validate checks the schedule for negative times or depths.
func (s Schedule) Validate() error {
	for i, e := range s {
		if e.Duration < 0 || e.DepthDB < 0 || e.RampTime < 0 {
			return fmt.Errorf("events: event %d has negative fields: %+v", i, e)
		}
		if e.PathIndex < 0 && !e.AllPaths {
			return fmt.Errorf("events: event %d has negative path index", i)
		}
	}
	return nil
}

// GenParams controls random schedule generation, defaulting to the paper's
// §6.2 workload.
type GenParams struct {
	Horizon     float64 // observation interval (s)
	Rate        float64 // expected blockage events per second
	MinDuration float64 // uniform duration lower bound (s)
	MaxDuration float64 // uniform duration upper bound (s)
	MinDepthDB  float64
	MaxDepthDB  float64
	NumPaths    int     // paths to distribute events over
	AllPathProb float64 // probability an event occludes the whole array
}

// DefaultGenParams matches §6.2: within each 1 s experiment one blocker
// appears, blocking for 100–500 ms, with human-body depths of 20–30 dB.
func DefaultGenParams(numPaths int) GenParams {
	return GenParams{
		Horizon:     1.0,
		Rate:        1.0,
		MinDuration: 0.100,
		MaxDuration: 0.500,
		MinDepthDB:  20,
		MaxDepthDB:  30,
		NumPaths:    numPaths,
		AllPathProb: 0,
	}
}

// Generate draws a random schedule with Poisson arrivals at the configured
// rate over the horizon.
func Generate(rng *rand.Rand, p GenParams) Schedule {
	if p.NumPaths <= 0 || p.Horizon <= 0 {
		return nil
	}
	var s Schedule
	// Poisson arrivals via exponential gaps.
	t := 0.0
	for {
		if p.Rate <= 0 {
			break
		}
		t += rng.ExpFloat64() / p.Rate
		if t >= p.Horizon {
			break
		}
		depth := p.MinDepthDB + rng.Float64()*(p.MaxDepthDB-p.MinDepthDB)
		s = append(s, Event{
			PathIndex: rng.Intn(p.NumPaths),
			AllPaths:  rng.Float64() < p.AllPathProb,
			Start:     t,
			Duration:  p.MinDuration + rng.Float64()*(p.MaxDuration-p.MinDuration),
			DepthDB:   depth,
			RampTime:  RampFor(depth),
		})
	}
	return s
}

// WalkingBlocker builds the Fig. 16 scenario: a blocker walking across a
// 2-path link blocks the NLOS beam first, then the LOS beam, with a gap
// set by the walking speed and beam separation. crossAt is when the blocker
// reaches the first (NLOS) beam.
func WalkingBlocker(crossAt, gap, dwell, depthDB float64) Schedule {
	ramp := RampFor(depthDB)
	return Schedule{
		{PathIndex: 1, Start: crossAt, Duration: dwell, DepthDB: depthDB, RampTime: ramp},
		{PathIndex: 0, Start: crossAt + gap, Duration: dwell, DepthDB: depthDB, RampTime: ramp},
	}
}
