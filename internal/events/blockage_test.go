package events

import (
	"math"
	"math/rand"
	"testing"
)

func TestEventTrapezoid(t *testing.T) {
	e := Event{PathIndex: 0, Start: 1, Duration: 0.2, DepthDB: 20, RampTime: 0.1}
	cases := []struct{ t, want float64 }{
		{0.5, 0},   // before
		{1.0, 0},   // exactly at start
		{1.05, 10}, // mid-ramp
		{1.1, 20},  // ramp complete
		{1.2, 20},  // holding
		{1.3, 20},  // end of hold
		{1.35, 10}, // mid fall
		{1.4, 0},   // cleared
		{2.0, 0},   // long after
	}
	for _, c := range cases {
		if got := e.LossAt(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LossAt(%g) = %g want %g", c.t, got, c.want)
		}
	}
	if e.End() != 1.4 {
		t.Fatalf("End = %g", e.End())
	}
	if e.Active(0.9) || !e.Active(1.2) || e.Active(1.5) {
		t.Fatal("Active wrong")
	}
}

func TestRampSlopeMatchesMeasurement(t *testing.T) {
	// Paper §4.1: blockage degrades per-beam amplitude 10 dB in 10 OFDM
	// symbols (8.93 µs each at 120 kHz SCS).
	depth := 25.0
	ramp := RampFor(depth)
	slope := depth / ramp // dB per second
	tenSymbols := 10 * 8.93e-6
	dbPer10Symbols := slope * tenSymbols
	if math.Abs(dbPer10Symbols-10) > 1e-9 {
		t.Fatalf("onset = %g dB per 10 symbols, want 10", dbPer10Symbols)
	}
	if RampFor(0) != 0 || RampFor(-5) != 0 {
		t.Fatal("non-positive depth should give zero ramp")
	}
}

func TestScheduleSumsOverlaps(t *testing.T) {
	s := Schedule{
		{PathIndex: 0, Start: 0, Duration: 1, DepthDB: 10, RampTime: 0.1},
		{PathIndex: 0, Start: 0.5, Duration: 1, DepthDB: 5, RampTime: 0.1},
		{PathIndex: 1, Start: 0, Duration: 1, DepthDB: 7, RampTime: 0.1},
	}
	if got := s.LossAt(0, 0.8); math.Abs(got-15) > 1e-9 {
		t.Fatalf("overlapping loss = %g want 15", got)
	}
	if got := s.LossAt(1, 0.8); math.Abs(got-7) > 1e-9 {
		t.Fatalf("path 1 loss = %g want 7", got)
	}
	if got := s.LossAt(2, 0.8); got != 0 {
		t.Fatalf("untouched path loss = %g", got)
	}
}

func TestAllPathsEvent(t *testing.T) {
	s := Schedule{{AllPaths: true, Start: 0, Duration: 1, DepthDB: 30, RampTime: 0.01}}
	for path := 0; path < 4; path++ {
		if got := s.LossAt(path, 0.5); math.Abs(got-30) > 1e-9 {
			t.Fatalf("path %d loss = %g", path, got)
		}
	}
}

func TestAnyActive(t *testing.T) {
	s := Schedule{{PathIndex: 0, Start: 1, Duration: 0.1, DepthDB: 10, RampTime: 0.05}}
	if s.AnyActive(0.5) {
		t.Fatal("active before start")
	}
	if !s.AnyActive(1.1) {
		t.Fatal("not active during event")
	}
	if s.AnyActive(5) {
		t.Fatal("active after end")
	}
}

func TestSorted(t *testing.T) {
	s := Schedule{
		{Start: 3}, {Start: 1}, {Start: 2},
	}
	sorted := s.Sorted()
	if sorted[0].Start != 1 || sorted[1].Start != 2 || sorted[2].Start != 3 {
		t.Fatalf("not sorted: %v", sorted)
	}
	// Original untouched.
	if s[0].Start != 3 {
		t.Fatal("Sorted mutated input")
	}
}

func TestValidate(t *testing.T) {
	good := Schedule{{PathIndex: 0, Duration: 1, DepthDB: 10}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Schedule{
		{{PathIndex: 0, Duration: -1}},
		{{PathIndex: 0, DepthDB: -1}},
		{{PathIndex: 0, RampTime: -1}},
		{{PathIndex: -2}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected error for %+v", bad[0])
		}
	}
	// AllPaths with negative index is fine (index ignored).
	ok := Schedule{{PathIndex: -1, AllPaths: true}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRespectsParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := DefaultGenParams(3)
	totalEvents := 0
	for trial := 0; trial < 300; trial++ {
		s := Generate(rng, p)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		totalEvents += len(s)
		for _, e := range s {
			if e.Start < 0 || e.Start >= p.Horizon {
				t.Fatalf("start %g outside horizon", e.Start)
			}
			if e.Duration < p.MinDuration-1e-12 || e.Duration > p.MaxDuration+1e-12 {
				t.Fatalf("duration %g outside [%g, %g]", e.Duration, p.MinDuration, p.MaxDuration)
			}
			if e.DepthDB < p.MinDepthDB || e.DepthDB > p.MaxDepthDB {
				t.Fatalf("depth %g outside range", e.DepthDB)
			}
			if e.PathIndex < 0 || e.PathIndex >= p.NumPaths {
				t.Fatalf("path index %d", e.PathIndex)
			}
		}
	}
	// Poisson(1) over 1 s across 300 trials ⇒ ≈300 events; allow wide slack.
	if totalEvents < 200 || totalEvents > 420 {
		t.Fatalf("unexpected event volume %d", totalEvents)
	}
	if Generate(rng, GenParams{}) != nil {
		t.Fatal("degenerate params should return nil")
	}
}

func TestWalkingBlockerShape(t *testing.T) {
	s := WalkingBlocker(0.2, 0.3, 0.15, 25)
	if len(s) != 2 {
		t.Fatalf("events %d", len(s))
	}
	// NLOS (path 1) blocked first, LOS (path 0) after the gap.
	if s[0].PathIndex != 1 || s[1].PathIndex != 0 {
		t.Fatalf("ordering: %+v", s)
	}
	if math.Abs(s[1].Start-s[0].Start-0.3) > 1e-12 {
		t.Fatal("gap wrong")
	}
	// Never simultaneous full blockage in this scenario (gap > dwell+ramps).
	for ts := 0.0; ts < 1.2; ts += 0.001 {
		l0 := s.LossAt(0, ts)
		l1 := s.LossAt(1, ts)
		if l0 >= 25 && l1 >= 25 {
			t.Fatalf("both paths fully blocked at t=%g", ts)
		}
	}
}

// TestEmptyScheduleIsNeutral: the empty (and nil) schedule is a valid
// no-op — zero loss on every path at every time, never active, and clean
// under Validate/Sorted. Callers (sim.Scenario, the station engine) rely
// on nil Blockage meaning "no blockage" without special-casing.
func TestEmptyScheduleIsNeutral(t *testing.T) {
	for _, s := range []Schedule{nil, {}} {
		for _, path := range []int{0, 3, 999} {
			for _, tm := range []float64{0, 0.5, 1e6} {
				if got := s.LossAt(path, tm); got != 0 {
					t.Fatalf("empty schedule LossAt(%d, %g) = %g", path, tm, got)
				}
			}
		}
		if s.AnyActive(0.5) {
			t.Fatal("empty schedule reports active")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("empty schedule invalid: %v", err)
		}
		if got := s.Sorted(); len(got) != 0 {
			t.Fatalf("empty schedule sorted to %d events", len(got))
		}
	}
}

// TestOverlappingIntervalsThroughRamps: overlapping events on one path sum
// sample-by-sample even where one event is still ramping while the other
// holds or falls — the physical model for two blockers crossing the same
// path. Coincident identical events double exactly.
func TestOverlappingIntervalsThroughRamps(t *testing.T) {
	a := Event{PathIndex: 0, Start: 0, Duration: 0.3, DepthDB: 20, RampTime: 0.1}    // holds 0.1–0.4, clears 0.5
	b := Event{PathIndex: 0, Start: 0.35, Duration: 0.3, DepthDB: 10, RampTime: 0.1} // ramps 0.35–0.45
	s := Schedule{a, b}
	cases := []struct{ t, want float64 }{
		{0.05, 10},      // a mid-ramp, b not started
		{0.40, 20 + 5},  // a holding (last instant), b mid-ramp: 10·(0.05/0.1)
		{0.45, 10 + 10}, // a mid-fall over 0.4–0.5: 20·(1−0.05/0.1); b fully risen
		{0.60, 0 + 10},  // a cleared, b holding
	}
	for _, c := range cases {
		if got := s.LossAt(0, c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("overlap LossAt(%g) = %g want %g", c.t, got, c.want)
		}
	}
	// Coincident identical events double.
	twin := Schedule{a, a}
	if got, want := twin.LossAt(0, 0.2), 2*a.LossAt(0.2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("coincident events: %g want %g", got, want)
	}
	// The overlap never leaks onto other paths.
	if got := s.LossAt(1, 0.4); got != 0 {
		t.Fatalf("overlap leaked to path 1: %g", got)
	}
}
