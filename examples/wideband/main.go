// Wideband operation (the §3.4 / Fig. 7–8 scenario): with a 10 ns
// multipath delay spread, a plain constructive multi-beam has deep in-band
// fades; the delay phased array (one panel per lobe behind true-time delay
// lines) compensates the spread and is flat at the full combining gain.
//
//	go run ./examples/wideband
package main

import (
	"fmt"
	"math/cmplx"
	"strings"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/core/delayarray"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
)

func main() {
	const spreadNs = 10.0
	u := antenna.NewULA(16, 28e9)
	m := channel.FromSpecs(env.Band28GHz(), u, 80, []channel.PathSpec{
		{AoDDeg: 0},
		{AoDDeg: 30, RelAttDB: 1, PhaseRad: 0.7, DelayNs: spreadNs},
	})
	delta, sigma := m.RelativeGain(1, 0)
	budget := link.DefaultBudget()
	offs := channel.SubcarrierOffsets(400e6, 48)

	single := u.SingleBeam(0)
	plain, err := multibeam.Weights(u, []multibeam.Beam{
		multibeam.Reference(0),
		{Angle: dsp.Rad(30), Amp: delta, Phase: sigma},
	})
	if err != nil {
		panic(err)
	}
	da, err := delayarray.ForChannel(u,
		[]float64{0, dsp.Rad(30)},
		[]complex128{1, cmplx.Rect(delta, sigma)},
		[]float64{0, spreadNs * 1e-9})
	if err != nil {
		panic(err)
	}

	fmt.Printf("2-path channel, second path %.1f dB down with %.0f ns excess delay\n\n", -dsp.AmpDB(delta), spreadNs)
	fmt.Println("SNR across the 400 MHz band:")
	fmt.Printf("%-22s %s\n", "", band(offs))
	render := func(name string, snr func(f float64) float64) {
		var sb strings.Builder
		lo, hi, sum := 999.0, -999.0, 0.0
		for _, f := range offs {
			s := snr(f)
			sum += s
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
			switch {
			case s < 20:
				sb.WriteByte('.')
			case s < 26:
				sb.WriteByte('o')
			default:
				sb.WriteByte('#')
			}
		}
		fmt.Printf("%-22s %s  mean %.1f dB, ripple %.1f dB\n", name, sb.String(), sum/float64(len(offs)), hi-lo)
	}
	render("single beam", func(f float64) float64 {
		return budget.SNRdB(cmplx.Abs(m.Effective(single, f)))
	})
	render("plain multi-beam", func(f float64) float64 {
		return budget.SNRdB(cmplx.Abs(m.Effective(plain, f)))
	})
	render("delay phased array", func(f float64) float64 {
		return budget.SNRdB(cmplx.Abs(da.Effective(m, f)))
	})
	fmt.Println("\nlegend: '#' ≥26 dB, 'o' 20–26 dB, '.' <20 dB")
}

func band(offs []float64) string {
	return fmt.Sprintf("%.0f MHz %s +%.0f MHz",
		offs[0]/1e6, strings.Repeat(" ", len(offs)-16), offs[len(offs)-1]/1e6)
}
