// Quickstart: build a two-path mmWave channel, estimate the constructive
// multi-beam parameters with the paper's two-probe method, and compare the
// multi-beam SNR against the conventional single beam.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/core/probe"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
)

// prober couples the OFDM sounder with the live channel.
type prober struct {
	s *nr.Sounder
	m *channel.Model
}

func (p *prober) Probe(w cmx.Vector) cmx.Vector { return p.s.Probe(p.m, w) }

func main() {
	// A 7 m indoor link: LOS at 0° plus a strong reflection at 30° that is
	// 4 dB weaker and arrives 0.9 ns later.
	u := antenna.NewULA(8, 28e9)
	band := env.Band28GHz()
	m := channel.FromSpecs(band, u, band.PathLossDB(7), []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 23.3},
		{AoDDeg: 30, RelAttDB: 4, PhaseRad: 2.5, DelayNs: 24.2},
	})

	budget := link.DefaultBudget()
	sounder, err := nr.NewSounder(nr.Mu3(), budget.BandwidthHz, 64,
		budget.NoiseToTxAmpRatio(), nr.DefaultImpairments(), rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	pr := &prober{s: sounder, m: m}

	// Beam training found the two departure angles; measure each beam once.
	angles := []float64{0, dsp.Rad(30)}
	m1 := pr.Probe(u.SingleBeam(angles[0])).Abs()
	m2 := pr.Probe(u.SingleBeam(angles[1])).Abs()

	// Two extra magnitude-only probes recover the relative channel (δ, σ)
	// despite CFO/SFO (§3.3, Eq. 11–12, wideband fusion Eq. 14).
	est, err := probe.EstimatePairWithDelay(pr, u, angles[0], angles[1], m1, m2, 0.9e-9, budget.BandwidthHz)
	if err != nil {
		panic(err)
	}
	fmt.Printf("two-probe estimate: δ = %.2f dB, σ = %.2f rad\n", dsp.AmpDB(est.Delta), est.Sigma)

	// Synthesize the constructive multi-beam and compare.
	w, err := multibeam.Weights(u, []multibeam.Beam{
		multibeam.Reference(angles[0]),
		{Angle: angles[1], Amp: est.Delta, Phase: est.Sigma},
	})
	if err != nil {
		panic(err)
	}
	offs := channel.SubcarrierOffsets(budget.BandwidthHz, 64)
	single := budget.WidebandSNRdB(m.EffectiveWideband(u.SingleBeam(angles[0]), offs))
	multi := budget.WidebandSNRdB(m.EffectiveWideband(w, offs))
	fmt.Printf("single beam SNR : %.2f dB → %.0f Mbps\n", single, link.Throughput(single, budget.BandwidthHz, 0)/1e6)
	fmt.Printf("multi-beam SNR  : %.2f dB → %.0f Mbps\n", multi, link.Throughput(multi, budget.BandwidthHz, 0)/1e6)
	fmt.Printf("constructive combining gain: %.2f dB\n", multi-single)
}
