// End-to-end comparison (the Fig. 18 scenario): mmReliable versus every
// baseline on the thin-margin outdoor link where mobility and blockage
// co-occur, repeated over several runs — the reliability and
// throughput-reliability-product story of the paper in one program.
//
//	go run ./examples/e2e
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

func main() {
	const runs = 5
	budget := sim.OutdoorBudget()
	runner := sim.Runner{Warmup: sim.StandardWarmup}
	u := func() *antenna.ULA { return antenna.NewULA(8, 28e9) }

	acc := map[string][]link.Summary{}
	for i := 0; i < runs; i++ {
		seed := int64(200 + i)
		mgr, err := manager.New("mmreliable", u(), budget, nr.Mu3(), manager.DefaultConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		rc, err := baselines.NewSingleBeamReactive(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		wb, err := baselines.NewWideBeam(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		for _, s := range []sim.Scheme{mgr, rc, wb} {
			out, err := runner.Run(sim.ThinMarginOutdoor(seed), s)
			if err != nil {
				panic(err)
			}
			acc[s.Name()] = append(acc[s.Name()], out[s.Name()].Summary)
		}
	}

	table := stats.NewTable(fmt.Sprintf("outdoor mobility+blockage, %d runs of 1 s", runs),
		"scheme", "median_rel", "mean_thr_Mbps", "mean_trp_Mbps")
	var mmTRP, reTRP float64
	for _, name := range []string{"mmreliable", "reactive", "widebeam"} {
		rel := make([]float64, 0, runs)
		var thr, trp float64
		for _, s := range acc[name] {
			rel = append(rel, s.Reliability)
			thr += s.MeanThroughput
			trp += s.TRProduct
		}
		thr /= float64(runs)
		trp /= float64(runs)
		if name == "mmreliable" {
			mmTRP = trp
		}
		if name == "reactive" {
			reTRP = trp
		}
		table.AddRow(name, stats.Fmt(stats.Median(rel)), stats.Fmt(thr/1e6), stats.Fmt(trp/1e6))
	}
	table.Render(os.Stdout)
	fmt.Printf("\nthroughput-reliability product: mmReliable / reactive = %.2fx\n", mmTRP/reTRP)
	fmt.Println("(the paper reports 2.3x on its 28 GHz testbed; see EXPERIMENTS.md)")
}
