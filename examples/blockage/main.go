// Blockage resilience (the Fig. 16 scenario): a blocker walks across a
// static indoor link, occluding first the reflected beam and then the LOS
// beam. The mmReliable multi-beam dips but never loses the link; the
// single-beam baseline crashes below the outage threshold and has to
// retrain.
//
//	go run ./examples/blockage
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

func main() {
	const seed = 7
	budget := sim.IndoorBudget()
	mgr, err := manager.New("mmreliable", antenna.NewULA(8, 28e9), budget, nr.Mu3(),
		manager.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	single, err := baselines.NewSingleBeamReactive(antenna.NewULA(8, 28e9), budget, nr.Mu3(),
		baselines.DefaultOptions(), rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}

	runner := sim.Runner{KeepSeries: true, Warmup: sim.StandardWarmup}
	outM, err := runner.Run(sim.WalkingBlockerIndoor(seed), mgr)
	if err != nil {
		panic(err)
	}
	outS, err := runner.Run(sim.WalkingBlockerIndoor(seed), single)
	if err != nil {
		panic(err)
	}
	mm := outM["mmreliable"]
	sb := outS["reactive"]

	fmt.Println("SNR over time (x = one ~12.5 ms bin; '-' marks sub-threshold/outage):")
	fmt.Printf("%-12s %s\n", "multi-beam", sparkline(mm))
	fmt.Printf("%-12s %s\n", "single-beam", sparkline(sb))
	fmt.Println()
	fmt.Printf("multi-beam : %s\n", mm.Summary)
	fmt.Printf("single-beam: %s\n", sb.Summary)
	fmt.Printf("\nblockage events detected by mmReliable: %d (power reallocated, no retrain)\n", mgr.BlockageDrops)
	fmt.Printf("reactive baseline retrains: %d\n", single.Retrains)
}

// sparkline renders a coarse SNR strip: one character per 100 slots.
func sparkline(res sim.Result) string {
	var sb strings.Builder
	const bin = 100
	for i := 0; i+bin <= len(res.Series); i += bin {
		lo := 999.0
		for _, s := range res.Series[i : i+bin] {
			if s.SNRdB < lo {
				lo = s.SNRdB
			}
		}
		switch {
		case lo < link.OutageThresholdDB:
			sb.WriteByte('-')
		case lo < 15:
			sb.WriteByte('o')
		default:
			sb.WriteByte('x')
		}
	}
	return sb.String()
}
