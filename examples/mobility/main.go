// Mobility tracking (the Fig. 17c scenario): the user translates at
// 1.5 m/s; mmReliable's per-beam super-resolution tracking plus
// constructive-combining refresh holds the link at high rate, while the
// ablations degrade.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

func main() {
	const seed = 3
	budget := sim.IndoorBudget()
	budget.TxPowerDBm -= 10 // mid-MCS so rate differences are visible

	run := func(name string, tracking, cc bool) link.Summary {
		cfg := manager.DefaultConfig()
		cfg.ProactiveTracking = tracking
		cfg.ConstructiveCombining = cc
		mgr, err := manager.New(name, antenna.NewULA(8, 28e9), budget, nr.Mu3(), cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		out, err := sim.Runner{Warmup: sim.StandardWarmup}.Run(sim.SmallSpreadMobile(seed), mgr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s refinements=%-3d retrains=%d\n", name, mgr.Refinements, mgr.Retrains)
		return out[name].Summary
	}

	fmt.Println("1.5 m/s translation, 1 s, 7 m link with a strong parallel reflector")
	full := run("tracking+CC", true, true)
	noCC := run("tracking-only", true, false)
	noTrack := run("no-tracking", false, true)

	fmt.Println()
	fmt.Printf("tracking+CC  : %s\n", full)
	fmt.Printf("tracking-only: %s\n", noCC)
	fmt.Printf("no-tracking  : %s\n", noTrack)
	fmt.Printf("\ntracking gain over no-tracking: %+.0f Mbps\n",
		(full.MeanThroughput-noTrack.MeanThroughput)/1e6)
	fmt.Printf("constructive-combining gain over tracking-only: %+.0f Mbps\n",
		(full.MeanThroughput-noCC.MeanThroughput)/1e6)
}
