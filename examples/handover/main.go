// Handover (§4.1/§8): two gNBs serve an open area; mid-run, a deep blocker
// takes down every path to the serving cell for 400 ms. The handover
// controller detects that the serving link is beyond local repair, sweeps
// the neighbor, and moves the UE there; a single-cell manager pinned to the
// dying gNB rides the outage to the floor.
//
//	go run ./examples/handover
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mmreliable/internal/antenna"
	"mmreliable/internal/core/handover"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/motion"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
)

func scenario() *sim.MultiScenario {
	e := env.NewEnvironment(env.Band28GHz(),
		env.Wall{Seg: env.Segment{A: env.Vec2{X: -5, Y: 4}, B: env.Vec2{X: 25, Y: 4}}, Mat: env.Metal},
	)
	e.FrontHalfOnly = false
	sc := &sim.MultiScenario{
		Env: e,
		GNBs: []env.Pose{
			{Pos: env.Vec2{X: 0, Y: 0}, Facing: 0},
			{Pos: env.Vec2{X: 20, Y: 0}, Facing: math.Pi},
		},
		UE:       motion.Static{Pose: env.Pose{Pos: env.Vec2{X: 8, Y: 0.5}, Facing: 0}},
		Duration: 1.0,
		Num:      nr.Mu3(),
		TxArray:  antenna.NewULA(8, 28e9),
		MaxPaths: 3,
	}
	// Block every path of gNB 0 (path indices 0..MaxPaths−1) for 400 ms.
	for k := 0; k < sc.MaxPaths; k++ {
		sc.Blockage = append(sc.Blockage, events.Event{
			PathIndex: k, Start: 0.3, Duration: 0.4, DepthDB: 45,
			RampTime: events.RampFor(45),
		})
	}
	return sc
}

func main() {
	const seed = 5
	budget := sim.IndoorBudget()
	u := func() *antenna.ULA { return antenna.NewULA(8, 28e9) }

	ctrl, err := handover.New("handover", 2, u(), budget, nr.Mu3(),
		handover.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	pinnedMgr, err := manager.New("pinned", u(), budget, nr.Mu3(),
		manager.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}

	runner := sim.Runner{}
	outH, err := runner.RunMulti(scenario(), ctrl)
	if err != nil {
		panic(err)
	}
	outP, err := runner.RunMulti(scenario(), sim.Pinned{Scheme: pinnedMgr, GNB: 0})
	if err != nil {
		panic(err)
	}

	fmt.Println("serving cell dies at t=0.3 s for 400 ms")
	fmt.Printf("with handover : %s  (handovers: %d, now serving gNB %d)\n",
		outH["handover"].Summary, ctrl.Handovers, ctrl.Serving())
	fmt.Printf("pinned to gNB0: %s\n", outP["pinned"].Summary)
}
