module mmreliable

go 1.22
