// Package mmreliable_test hosts the benchmark harness that regenerates
// every table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus micro-benchmarks for the hot
// signal-processing paths. Each BenchmarkFigXX wraps the corresponding
// experiments.FigXX generator; the table it produces is printed once per
// benchmark so `go test -bench` output doubles as the reproduction record.
// The mmbench command prints the same tables without the benchmarking
// overhead.
package mmreliable_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"

	"mmreliable/internal/antenna"
	"mmreliable/internal/channel"
	"mmreliable/internal/cluster"
	"mmreliable/internal/cmx"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/core/multibeam"
	"mmreliable/internal/core/superres"
	"mmreliable/internal/dsp"
	"mmreliable/internal/env"
	"mmreliable/internal/experiments"
	"mmreliable/internal/hybrid"
	"mmreliable/internal/link"
	"mmreliable/internal/metro"
	"mmreliable/internal/nr"
	"mmreliable/internal/scratch"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
	"mmreliable/internal/station"
	"mmreliable/internal/stats"
)

// benchCfg keeps bench iterations affordable while remaining deterministic.
var benchCfg = experiments.Config{Seed: 1, Quick: true}

var printOnce sync.Map

// runFigure executes one figure generator b.N times and prints its table
// once.
func runFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var table *stats.Table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table = e.Run(benchCfg)
	}
	b.StopTimer()
	if _, done := printOnce.LoadOrStore(id, true); !done && table != nil {
		fmt.Fprintf(os.Stderr, "\n%s\n", table.String())
	}
}

// One benchmark per paper table/figure.

func BenchmarkFig04aReflectorCDF(b *testing.B)   { runFigure(b, "4a") }
func BenchmarkFig04bPathHeatmap(b *testing.B)    { runFigure(b, "4b") }
func BenchmarkFig08DelaySpread(b *testing.B)     { runFigure(b, "8") }
func BenchmarkFig11aSuperres(b *testing.B)       { runFigure(b, "11a") }
func BenchmarkFig11bTwoSinc(b *testing.B)        { runFigure(b, "11b") }
func BenchmarkFig13dPattern(b *testing.B)        { runFigure(b, "13d") }
func BenchmarkFig14Sensitivity(b *testing.B)     { runFigure(b, "14") }
func BenchmarkFig15aPhaseScan(b *testing.B)      { runFigure(b, "15a") }
func BenchmarkFig15bAmpScan(b *testing.B)        { runFigure(b, "15b") }
func BenchmarkFig15cPhaseStability(b *testing.B) { runFigure(b, "15c") }
func BenchmarkFig15dOracleGap(b *testing.B)      { runFigure(b, "15d") }
func BenchmarkFig16Blockage(b *testing.B)        { runFigure(b, "16") }
func BenchmarkFig17aPowerRotation(b *testing.B)  { runFigure(b, "17a") }
func BenchmarkFig17bTrackAccuracy(b *testing.B)  { runFigure(b, "17b") }
func BenchmarkFig17cTracking(b *testing.B)       { runFigure(b, "17c") }
func BenchmarkFig18aStatic(b *testing.B)         { runFigure(b, "18a") }
func BenchmarkFig18bReliability(b *testing.B)    { runFigure(b, "18b") }
func BenchmarkFig18cTradeoff(b *testing.B)       { runFigure(b, "18c") }
func BenchmarkFig18dOverhead(b *testing.B)       { runFigure(b, "18d") }
func BenchmarkFig19Band60GHz(b *testing.B)       { runFigure(b, "19") }

// Ablations and §8 extensions beyond the paper's figures.

func BenchmarkAblationQuantization(b *testing.B) { runFigure(b, "a1") }
func BenchmarkAblationMaintenance(b *testing.B)  { runFigure(b, "a2") }
func BenchmarkAblationCorrBlockage(b *testing.B) { runFigure(b, "a3") }
func BenchmarkAblationCCRefresh(b *testing.B)    { runFigure(b, "a4") }
func BenchmarkAblationTraining(b *testing.B)     { runFigure(b, "a5") }
func BenchmarkExtensionIRS(b *testing.B)         { runFigure(b, "e1") }
func BenchmarkExtensionHandover(b *testing.B)    { runFigure(b, "e2") }
func BenchmarkExtensionRateAdapt(b *testing.B)   { runFigure(b, "e3") }
func BenchmarkExtensionMultiUser(b *testing.B)   { runFigure(b, "e4") }
func BenchmarkExtensionStation(b *testing.B)     { runFigure(b, "e5") }
func BenchmarkExtensionCluster(b *testing.B)     { runFigure(b, "e6") }
func BenchmarkExtensionMetro(b *testing.B)       { runFigure(b, "e7") }
func BenchmarkExtensionHybrid(b *testing.B)      { runFigure(b, "e8") }

// Micro-benchmarks for the hot per-slot/per-probe paths, to show the
// reproduction's algorithmic costs (the paper reports its super-resolution
// solve at ~100 µs).

func benchChannel() *channel.Model {
	return channel.FromSpecs(env.Band28GHz(), antenna.NewULA(8, 28e9), 80, []channel.PathSpec{
		{AoDDeg: 0, DelayNs: 20},
		{AoDDeg: 30, RelAttDB: 4, PhaseRad: 1.0, DelayNs: 28},
		{AoDDeg: -25, RelAttDB: 7, PhaseRad: -0.5, DelayNs: 35},
	})
}

func BenchmarkMultibeamWeights(b *testing.B) {
	u := antenna.NewULA(64, 28e9)
	beams := []multibeam.Beam{
		multibeam.Reference(0),
		{Angle: dsp.Rad(30), Amp: 0.6, Phase: 1.0},
		{Angle: dsp.Rad(-25), Amp: 0.4, Phase: -0.5},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := multibeam.Weights(u, beams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEffectiveWideband(b *testing.B) {
	m := benchChannel()
	w := m.Tx.SingleBeam(0)
	offs := channel.SubcarrierOffsets(400e6, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.EffectiveWideband(w, offs)
	}
}

func BenchmarkSounderProbe(b *testing.B) {
	m := benchChannel()
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, 1e-6, nr.DefaultImpairments(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	w := m.Tx.SingleBeam(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Probe(m, w)
	}
}

// BenchmarkSuperresExtract measures the Eq. 23 solve — the paper completes
// its CVX solve in ~100 µs on a host PC; the dedicated Go solver should be
// comfortably inside that.
func BenchmarkSuperresExtract(b *testing.B) {
	m := benchChannel()
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, 1e-6, nr.DefaultImpairments(), rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	w := m.PerAntennaCSI(0).Conj().Normalize()
	cir := s.CIR(s.Probe(m, w))
	rel := []float64{0, 8e-9, 15e-9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := superres.Extract(cir, rel, s.DelayKernel, s.SampleSpacing(), superres.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRayTrace(b *testing.B) {
	e := env.ConferenceRoom(env.Band28GHz())
	gnb := env.GNBPose(true)
	ue := env.Pose{Pos: env.Vec2{X: 6, Y: 2.6}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Trace(gnb, ue)
	}
}

// Scratch-reusing variants of the hot paths: these are the steady-state
// costs of the factored wideband kernel (BenchmarkProbe must report
// 0 allocs/op — pinned by TestProbeIntoAllocs as well).

func BenchmarkProbe(b *testing.B) {
	m := benchChannel()
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, 1e-6, nr.DefaultImpairments(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	w := m.Tx.SingleBeam(0)
	dst := make(cmx.Vector, s.NumSC)
	s.ProbeInto(m, w, dst) // warm FFT plan + channel cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ProbeInto(m, w, dst)
	}
}

func BenchmarkEffectiveWidebandInto(b *testing.B) {
	m := benchChannel()
	w := m.Tx.SingleBeam(0)
	offs := channel.SubcarrierOffsets(400e6, 64)
	dst := make(cmx.Vector, len(offs))
	m.EffectiveWidebandInto(w, offs, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.EffectiveWidebandInto(w, offs, dst)
	}
}

// BenchmarkEffectiveWidebandBatch measures the planar batch evaluator on a
// frame's worth of UEs: 8 clustered channels × 64 subcarriers per Eval,
// through one shared workspace — the kernel the station's frame-barrier
// batch pass and the cluster's monitor round both run on.
func BenchmarkEffectiveWidebandBatch(b *testing.B) {
	u := antenna.NewULA(8, 28e9)
	fOffs := channel.SubcarrierOffsets(400e6, 64)
	rng := rand.New(rand.NewSource(23))
	const n = 8
	models := make([]*channel.Model, n)
	weights := make([]cmx.Vector, n)
	for i := range models {
		models[i] = channel.Cluster(rng, env.Band28GHz(), u, channel.DefaultClusterParams())
		models[i].Reuse = true
		weights[i] = u.SingleBeam(0.05 * float64(i))
	}
	ws := scratch.New()
	var batch channel.WidebandBatch
	batch.Reset(fOffs)
	for i := range models {
		batch.Add(models[i], weights[i])
	}
	mk := ws.Mark()
	batch.Eval(ws) // warm caches and workspace
	ws.Release(mk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset(fOffs)
		for k := range models {
			batch.Add(models[k], weights[k])
		}
		m := ws.Mark()
		batch.Eval(ws)
		ws.Release(m)
	}
}

// BenchmarkBatchedSlot measures the station's frame-barrier batch pass as
// composed from the public pieces: gather each established grant's active
// weights and channel model, run one WidebandBatch evaluation over the
// frame's UEs, and fold every row to a wideband entry SNR. This is the
// per-frame coordinator-side cost the batched planar backend adds (and the
// per-slot work it amortises away); the station package pins the in-engine
// variant.
func BenchmarkBatchedSlot(b *testing.B) {
	const ues = 8
	mgrs := make([]*manager.Manager, ues)
	models := make([]*channel.Model, ues)
	for i := range mgrs {
		mgr, err := manager.New(fmt.Sprintf("m%d", i), antenna.NewULA(8, 28e9),
			link.DefaultBudget(), nr.Mu3(), manager.DefaultConfig(),
			rand.New(rand.NewSource(seeds.Mix(41, int64(i)))))
		if err != nil {
			b.Fatal(err)
		}
		sc := sim.StaticIndoor(seeds.Mix(41, int64(i)))
		if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
			b.Fatal(err)
		}
		if !mgr.Established() {
			b.Fatalf("manager %d not established after run", i)
		}
		m := sc.ChannelAt(sc.Duration)
		m.Reuse = true
		mgrs[i], models[i] = mgr, m
	}
	txLin, noiseLin := link.DefaultBudget().SNRTerms()
	ws := scratch.New()
	var batch channel.WidebandBatch
	var sink float64
	frame := func() {
		batch.Reset(mgrs[0].Offsets())
		for i := range mgrs {
			batch.Add(models[i], mgrs[i].ActiveWeightsView())
		}
		mk := ws.Mark()
		batch.Eval(ws)
		for r := range mgrs {
			re, im := batch.Row(r)
			sink = link.WidebandSNRdBSplitTerms(re, im, txLin, noiseLin)
		}
		ws.Release(mk)
	}
	frame() // warm caches and workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame()
	}
	_ = sink
}

// BenchmarkSuperresExtractInto is the frequency-domain fit on a
// per-worker workspace — the steady-state maintenance-tick cost (0
// allocs/op, pinned by TestExtractIntoAllocs as well).
func BenchmarkSuperresExtractInto(b *testing.B) {
	m := benchChannel()
	s, err := nr.NewSounder(nr.Mu3(), 400e6, 64, 1e-6, nr.DefaultImpairments(), rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	w := m.PerAntennaCSI(0).Conj().Normalize()
	cir := s.CIR(s.Probe(m, w))
	rel := []float64{0, 8e-9, 15e-9}
	ws := scratch.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk := ws.Mark()
		if _, err := superres.ExtractInto(cir, rel, s.SampleSpacing(), superres.DefaultConfig(), ws); err != nil {
			b.Fatal(err)
		}
		ws.Release(mk)
	}
}

// BenchmarkManagerMaintainTick measures a steady-state maintenance round
// through the public Step path on an established static indoor link: one
// CSI-RS probe, OFDM round trip, CIR, frequency-domain super-resolution
// fit, and tracker observation per iteration (the allocation floor of the
// inner round is pinned exactly by the manager package's
// TestMaintainTickAllocs).
func BenchmarkManagerMaintainTick(b *testing.B) {
	mcfg := manager.DefaultConfig()
	mgr, err := manager.New("m", antenna.NewULA(8, 28e9), link.DefaultBudget(), nr.Mu3(), mcfg, rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	sc := sim.StaticIndoor(5)
	if _, err := (sim.Runner{}).Run(sc, mgr); err != nil {
		b.Fatal(err)
	}
	m := sc.ChannelAt(sc.Duration)
	t := sc.Duration
	// Warm: settle any anchor rebuild before measuring.
	for i := 0; i < 3; i++ {
		t += mcfg.MaintainPeriod
		mgr.Step(t, m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += mcfg.MaintainPeriod
		mgr.Step(t, m)
	}
}

// BenchmarkStationSlot measures the serving engine's steady-state per-
// session-slot cost through the public station API: an 8-UE station
// stepping whole frames on the inline single-worker path. Must report
// 0 allocs/op — the station package's TestStationSlotAllocs pins the same
// loop exactly.
func BenchmarkStationSlot(b *testing.B) {
	st, err := station.New(nr.Mu3(), station.Config{
		ProbeBudget: 8, FramePeriod: 20e-3, MaxSessions: 64,
		Workers: 1, Warmup: sim.StandardWarmup, AgingBoost: 0.25,
		Manager: manager.DefaultConfig(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const ues = 8
	for i := 0; i < ues; i++ {
		s := seeds.Mix(41, int64(i))
		if _, err := st.Attach(station.SessionConfig{
			Scenario: sim.StaticIndoor(s),
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame() // establish sessions + warm buffers
	}
	slotsPerOp := ues * st.SlotsPerFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AdvanceFrame()
	}
	b.StopTimer()
	perSlot := float64(b.Elapsed().Nanoseconds()) / float64(b.N*slotsPerOp)
	b.ReportMetric(perSlot, "ns/sessionslot")
	b.ReportMetric(1e9/perSlot, "sessionslots/s")
}

// BenchmarkStationSlotQuiescent is BenchmarkStationSlot with fading
// disabled: the static, unblocked sessions are then temporally coherent
// slot to slot and the incremental frame engine's quiescent fast paths
// carry the frame (run with MMR_INCREMENTAL=off for the full-recompute
// cost of the same fixture). The gap between this and BenchmarkStationSlot
// is the fading-driven recompute floor, not engine overhead.
func BenchmarkStationSlotQuiescent(b *testing.B) {
	st, err := station.New(nr.Mu3(), station.Config{
		ProbeBudget: 8, FramePeriod: 20e-3, MaxSessions: 64,
		Workers: 1, Warmup: sim.StandardWarmup, AgingBoost: 0.25,
		Manager: manager.DefaultConfig(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const ues = 8
	for i := 0; i < ues; i++ {
		s := seeds.Mix(41, int64(i))
		sc := sim.StaticIndoor(s)
		sc.Fading = nil
		if _, err := st.Attach(station.SessionConfig{
			Scenario: sc,
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	slotsPerOp := ues * st.SlotsPerFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AdvanceFrame()
	}
	b.StopTimer()
	perSlot := float64(b.Elapsed().Nanoseconds()) / float64(b.N*slotsPerOp)
	b.ReportMetric(perSlot, "ns/sessionslot")
	b.ReportMetric(1e9/perSlot, "sessionslots/s")
}

// BenchmarkHybridSlot measures the hybrid SDMA tier's steady-state per-
// session-slot cost: 4 fading-free spread UEs forced into shared slots
// (thresholds wide open) on the inline single-worker path, so every owned
// data slot runs the per-slot MMSE combine. Must report 0 allocs/op — the
// station package's TestHybridSlotAllocs pins the same loop exactly.
func BenchmarkHybridSlot(b *testing.B) {
	was := hybrid.Enabled
	hybrid.Enabled = true
	defer func() { hybrid.Enabled = was }()
	cfg := station.DefaultConfig()
	cfg.Workers = 1
	cfg.SDMA = station.SDMAConfig{Chains: 4, MinSeparationDeg: 0, MinSINRdB: -100}
	st, err := station.New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	const ues = 4
	for i := 0; i < ues; i++ {
		s := seeds.Mix(43, int64(i))
		sc := sim.SpreadStaticIndoor(s, float64(i)/(ues-1))
		sc.Fading = nil
		if _, err := st.Attach(station.SessionConfig{
			Scenario: sc,
			Budget:   sim.IndoorBudget(),
			Seed:     s,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		st.AdvanceFrame()
	}
	if st.CountersSnapshot().SDMAGroups == 0 {
		b.Fatal("warmup never grouped — the benchmark would not cover the combiner")
	}
	slotsPerOp := ues * st.SlotsPerFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AdvanceFrame()
	}
	b.StopTimer()
	perSlot := float64(b.Elapsed().Nanoseconds()) / float64(b.N*slotsPerOp)
	b.ReportMetric(perSlot, "ns/sessionslot")
	b.ReportMetric(1e9/perSlot, "sessionslots/s")
}

// BenchmarkMMSECombiner measures one digital-combining round in isolation:
// a 4-user group over 64 subcarriers — cross-channel fill excluded, so this
// is the Gram build + Cholesky solve + per-user wideband SINR fold. Must
// report 0 allocs/op (the combiner's own test pins it).
func BenchmarkMMSECombiner(b *testing.B) {
	const k, nsc = 4, 64
	c := hybrid.NewCombiner(k, nsc)
	rng := rand.New(rand.NewSource(9))
	c.Begin(k)
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			re, im := c.Entry(u, v)
			amp := 1e-4
			if u != v {
				amp *= 0.1
			}
			ph := rng.Float64()
			for s := 0; s < nsc; s++ {
				re[s] = amp * math.Cos(ph+0.01*float64(s))
				im[s] = amp * math.Sin(ph+0.01*float64(s))
			}
		}
	}
	const txLin, noiseLin = 1.0, 1e-10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Begin(k)
		if err := c.Solve(txLin, noiseLin); err != nil {
			b.Fatal(err)
		}
		for u := 0; u < k; u++ {
			_ = c.UserSINRdB(u, txLin, noiseLin)
		}
	}
}

// BenchmarkClusterFrame measures the CoMP coordinator's steady-state cost
// through the public cluster API: a quiescent 2-cell/2-UE hall deployment
// (single-worker stations, tracking ablated as in the cluster package's
// own alloc pin), one 20 ms cluster frame per iteration — both member
// stations' slot loops plus the coordinator's monitor/harvest work.
func BenchmarkClusterFrame(b *testing.B) {
	e, poses := env.MultiCellHall(env.Band28GHz(), 2)
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = 31
	ccfg.Station.Workers = 1
	ccfg.Station.Manager.ProactiveTracking = false
	cl, err := cluster.New(nr.Mu3(), ccfg, cluster.Deployment{
		Env: e, Cells: poses, Budget: sim.IndoorBudget(),
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, pos := range env.HallUEPositions(2) {
		if _, err := cl.AddUE(cluster.UEConfig{Pos: pos}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		cl.AdvanceFrame() // admit, establish both legs, warm buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.AdvanceFrame()
	}
}

// BenchmarkMetroFrame measures the sharded metro layer's steady-state cost
// through the public metro API: an 8-site quiescent city (2 cells and 2 UEs
// per site, churn off, fading ablated) advancing one lock-step frame per
// iteration on the single-worker inline path, so the number is comparable
// across runner core counts. Must report 0 allocs/op; the UEs/sec custom
// metric is the city-throughput headline tracked by benchjson. The metro
// package's own BenchmarkMetroFrame sweeps site and worker counts.
func BenchmarkMetroFrame(b *testing.B) {
	cfg := metro.DefaultConfig()
	cfg.Workers = 1
	cfg.ChurnArrivalRate = 0
	m, err := metro.New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 40; i++ {
		m.AdvanceFrame() // admit, establish, warm every per-site buffer
	}
	ues := m.ResidentUEs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AdvanceFrame()
	}
	b.StopTimer()
	b.ReportMetric(float64(ues*b.N)/b.Elapsed().Seconds(), "UEs/sec")
}

// BenchmarkMetroFrameMixed measures the incremental frame engine's honest
// metro workload through the public API: an 8-site city where a quarter of
// the UEs pace the hall at walking speed (full recompute every slot), the
// rest sit still (quiescent fast paths), and session churn keeps arrivals
// and harvests flowing. UEs/sec counts resident-UE-frames per wall-clock
// second, sampled every frame because churn moves the population.
func BenchmarkMetroFrameMixed(b *testing.B) {
	cfg := metro.DefaultConfig()
	cfg.Clusters = 8
	cfg.Workers = 1
	cfg.MobileFraction = 0.25
	m, err := metro.New(nr.Mu3(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 40; i++ {
		m.AdvanceFrame()
	}
	b.ReportAllocs()
	b.ResetTimer()
	ueFrames := 0
	for i := 0; i < b.N; i++ {
		ueFrames += m.ResidentUEs()
		m.AdvanceFrame()
	}
	b.StopTimer()
	b.ReportMetric(float64(ueFrames)/b.Elapsed().Seconds(), "UEs/sec")
}

// BenchmarkTraceIndexed measures the spatial-indexed ray tracer on the
// 1024-wall metro grid (16×16 Manhattan blocks): one street-level trace per
// iteration, occlusion tested against the whole city through the uniform
// grid. The env package's BenchmarkTraceIndexed/BenchmarkTraceReference
// pair sweeps wall counts for the sublinear-scaling comparison; this
// wrapper pins the largest indexed configuration in BENCH_results.json.
func BenchmarkTraceIndexed(b *testing.B) {
	e, poses := env.MetroGrid(env.Band28GHz(), 16)
	e.MaxOrder = 2
	tx := poses[1]
	rx := env.Pose{Pos: tx.Pos.Add(env.Vec2{X: 21, Y: 0}), Facing: 3.0}
	buf := make([]env.Path, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.TraceAppend(buf[:0], tx, rx)
	}
}
