// Command mmstation runs the concurrent multi-UE gNB serving engine
// (internal/station): N UE sessions — each a full mmReliable beam manager
// against its own scenario replay — share one radio frame and one CSI-RS
// probe budget, arbitrated per frame by the staleness × SNR-drop scheduler.
//
// Usage:
//
//	mmstation -ues 16 -scenario indoor -duration 1
//	mmstation -ues 32 -budget 8 -churn -workers 8
//	mmstation -ues 8 -scenario walking-blocker -budget 2 -seed 7
//
// Scenarios: the sim.Named set (indoor, indoor-mobile, outdoor,
// walking-blocker, small-spread, rotating-ue) plus "mixed" (alternating
// static-indoor / walking-blocker — the CI determinism workload).
//
// Every session replays its own deterministic scenario instance (seeded via
// seeds.Mix(seed, 981, id)), all lifecycle and scheduling decisions happen
// single-threaded at frame boundaries, and the output carries no wall-clock
// or host-dependent fields — so stdout is byte-identical for any -workers
// value. CI diffs -workers 1 against -workers 8 on a 32-UE churn run.
package main

import (
	"flag"
	"fmt"
	"os"

	"mmreliable/internal/core"
	"mmreliable/internal/link"
	"mmreliable/internal/nr"
	"mmreliable/internal/seeds"
	"mmreliable/internal/sim"
	"mmreliable/internal/station"
	"mmreliable/internal/stats"
)

func main() {
	ues := flag.Int("ues", 8, "number of UE sessions to attach")
	scenario := flag.String("scenario", "mixed", "mixed | indoor | indoor-mobile | outdoor | walking-blocker | small-spread | rotating-ue")
	budget := flag.Int("budget", station.DefaultConfig().ProbeBudget, "probe grants per frame across all sessions (0 = unlimited, every session self-schedules)")
	frameMS := flag.Float64("frame-ms", station.DefaultConfig().FramePeriod*1e3, "scheduling frame period in milliseconds")
	duration := flag.Float64("duration", 0.5, "simulated duration in seconds (warmup included)")
	seed := flag.Int64("seed", 1, "base seed; per-session streams are derived via seeds.Mix")
	workers := flag.Int("workers", 0, "worker goroutines stepping sessions (0 = GOMAXPROCS); output is identical for any value")
	maxSessions := flag.Int("max-sessions", station.DefaultConfig().MaxSessions, "admission-control cap on concurrently attached sessions")
	churn := flag.Bool("churn", false, "mid-run churn: every 4th UE attaches at 0.3×duration, every 5th detaches at 0.7×duration")
	perUE := flag.Bool("per-ue", false, "print the per-UE result table")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmstation"))
		return
	}
	if err := core.CheckFlags("mmstation",
		core.IntAtLeast("ues", *ues, 1),
		core.IntAtLeast("budget", *budget, 0),
		core.FloatPositive("frame-ms", *frameMS),
		core.FloatPositive("duration", *duration),
		core.IntAtLeast("workers", *workers, 0),
		core.IntAtLeast("max-sessions", *maxSessions, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := station.DefaultConfig()
	cfg.ProbeBudget = *budget
	cfg.FramePeriod = *frameMS * 1e-3
	cfg.MaxSessions = *maxSessions
	cfg.Workers = *workers

	st, err := station.New(nr.Mu3(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mkScenario := func(id int, sseed int64) (*sim.Scenario, link.Budget, error) {
		if *scenario == "mixed" {
			if id%2 == 0 {
				return sim.StaticIndoor(sseed), sim.IndoorBudget(), nil
			}
			return sim.WalkingBlockerIndoor(sseed), sim.IndoorBudget(), nil
		}
		return sim.Named(*scenario, sseed)
	}

	for i := 0; i < *ues; i++ {
		sseed := seeds.Mix(*seed, 981, int64(i))
		sc, bud, err := mkScenario(i, sseed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		scfg := station.SessionConfig{
			Scenario: sc,
			Budget:   bud,
			Seed:     sseed,
		}
		if *churn {
			if i%4 == 3 {
				scfg.AttachAt = 0.3 * *duration
			}
			if i%5 == 4 {
				scfg.DetachAt = 0.7 * *duration
			}
		}
		if _, err := st.Attach(scfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res := st.Run(*duration)
	c := res.Counters

	fmt.Printf("station: %d UEs, scenario %s, %.1f s, budget %d grants/frame, frame %.1f ms (seed %d)\n",
		*ues, *scenario, *duration, *budget, *frameMS, *seed)
	fmt.Printf("frames %d  session-slots %d  admitted %d  rejected %d  detached %d\n",
		c.Frames, c.SessionSlots, c.AttachesAdmitted, c.AttachesRejected, c.Detaches)
	fmt.Printf("probes %d  grants %d  denials %d  preemptions %d  realigns %d  retrains %d  training-slots %d\n",
		c.ProbesIssued, c.Grants, c.BudgetDenials, c.Preemptions, c.Realigns, c.Retrains, c.TrainingSlots)
	overheadPct := 0.0
	if c.SessionSlots > 0 {
		overheadPct = 100 * float64(c.TrainingSlots) / float64(c.SessionSlots)
	}
	fmt.Printf("mean reliability %s  median SNR %s dB  training overhead %s%%  min/max grant ratio %s\n",
		stats.Fmt(res.MeanReliability), stats.Fmt(res.MedianSNRdB),
		stats.Fmt(overheadPct), stats.Fmt(res.MinMaxGrantRatio))

	if *perUE {
		table := stats.NewTable("per-UE results",
			"ue", "state", "slots", "reliability", "snr_dB", "thr_Mbps", "grants", "denials", "preempt", "retrain")
		for _, ur := range res.PerUE {
			s := ur.Summary
			table.AddRow(fmt.Sprintf("%03d", ur.ID), ur.State, fmt.Sprintf("%d", ur.Slots),
				stats.Fmt(s.Reliability), stats.Fmt(s.MeanSNRdB), stats.Fmt(s.MeanThroughput/1e6),
				fmt.Sprintf("%d", ur.Grants), fmt.Sprintf("%d", ur.BudgetDenials),
				fmt.Sprintf("%d", ur.Preemptions), fmt.Sprintf("%d", ur.Retrains))
		}
		table.Render(os.Stdout)
	}
}
