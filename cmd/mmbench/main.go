// Command mmbench regenerates the paper's tables and figures from the
// mmReliable reproduction. Each figure prints as an ASCII table of the same
// series the paper plots.
//
// Usage:
//
//	mmbench -fig 14            # one figure
//	mmbench -fig all           # everything, in paper order
//	mmbench -list              # list available figures
//	mmbench -fig 18b -quick    # reduced Monte-Carlo volume
//	mmbench -seed 7 -fig 18c   # different random seed
//	mmbench -fig 18b -workers 8  # shard Monte-Carlo trials over 8 cores
//	mmbench -fig 16 -cpuprofile cpu.pprof   # profile the run
//	mmbench -fig 16 -memprofile mem.pprof   # heap profile at exit
//
// Tables are byte-identical for every -workers value (including the
// default GOMAXPROCS): per-trial RNG streams are derived from
// (seed, experiment, trial), never from scheduling order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mmreliable/internal/core"
	"mmreliable/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure id (e.g. 14, 18b) or 'all'")
	quick := flag.Bool("quick", false, "reduce Monte-Carlo volume")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker goroutines for Monte-Carlo trials (0 = GOMAXPROCS); output is identical for any value")
	list := flag.Bool("list", false, "list available figures")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmbench"))
		return
	}
	if err := core.CheckFlags("mmbench",
		core.IntAtLeast("workers", *workers, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}
	run := func(e experiments.Experiment) {
		start := time.Now()
		table := e.Run(cfg)
		table.Render(os.Stdout)
		fmt.Printf("(fig %s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if *fig == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "use -list to see available figures")
		os.Exit(1)
	}
	run(e)
}
