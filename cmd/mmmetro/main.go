// Command mmmetro runs the city-scale sharded metro simulation
// (internal/metro): hundreds of independent cluster sites — each a full
// multi-cell CoMP cluster in a shared spatially-indexed hall — advance in
// lock-step frames over a work-stealing shard pool, with session churn
// (Poisson arrivals, exponential dwell) streamed into constant-size
// per-shard sketches.
//
// Usage:
//
//	mmmetro -clusters 64 -cells 2 -ues 2 -duration 0.6
//	mmmetro -clusters 256 -workers 8 -churn 2.5
//	mmmetro -clusters 64 -workers 1 -seed 7
//
// Every per-site stream is derived from -seed via seeds.Mix keyed only by
// the site index, shards are fixed site ranges executed whole, and the
// final reduction walks shards in index order — so stdout is byte-identical
// for any -workers value. CI diffs -workers 1 against -workers 8 on a
// 64-site churn run, and MMR_INCREMENTAL=off against the default
// incremental engine. Wall-clock throughput (UEs/sec) goes to stderr so it
// never perturbs the diff.
//
// -cpuprofile / -memprofile write pprof profiles of the run (see the README
// "Profiling the metro loop").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mmreliable/internal/core"
	"mmreliable/internal/metro"
	"mmreliable/internal/nr"
)

func main() {
	def := metro.DefaultConfig()
	clusters := flag.Int("clusters", 64, "number of independent cluster sites in the city")
	cells := flag.Int("cells", def.CellsPerCluster, "gNB cells per site")
	ues := flag.Int("ues", def.UEsPerCluster, "initial UEs per site")
	duration := flag.Float64("duration", 0.6, "simulated duration in seconds (per-site warmup included)")
	seed := flag.Int64("seed", 1, "base seed; per-site streams are derived via seeds.Mix")
	workers := flag.Int("workers", 0, "shard-pool workers (0 = GOMAXPROCS); output is identical for any value")
	shards := flag.Int("shards", 0, "shard count (0 = default 64); part of the determinism contract — fix it when comparing runs")
	churn := flag.Float64("churn", def.ChurnArrivalRate, "session arrivals per second per site (0 disables churn)")
	session := flag.Float64("session", def.MeanSessionS, "mean session length in seconds (exponential dwell)")
	mobile := flag.Float64("mobile", def.MobileFraction, "fraction of UEs that pace the hall at walking speed (0 = all static)")
	speed := flag.Float64("speed", def.SpeedMPS, "mobile-UE walking speed in m/s (0 = 1.4)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmmetro"))
		return
	}
	if err := core.CheckFlags("mmmetro",
		core.IntAtLeast("clusters", *clusters, 1),
		core.IntAtLeast("cells", *cells, 1),
		core.IntAtLeast("ues", *ues, 1),
		core.FloatPositive("duration", *duration),
		core.IntAtLeast("workers", *workers, 0),
		core.IntAtLeast("shards", *shards, 0),
		core.FloatAtLeast("churn", *churn, 0),
		core.FloatPositive("session", *session),
		core.FloatInRange("mobile", *mobile, 0, 1),
		core.FloatAtLeast("speed", *speed, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	cfg := def
	cfg.Seed = *seed
	cfg.Clusters = *clusters
	cfg.CellsPerCluster = *cells
	cfg.UEsPerCluster = *ues
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.ChurnArrivalRate = *churn
	cfg.MeanSessionS = *session
	cfg.MobileFraction = *mobile
	cfg.SpeedMPS = *speed

	m, err := metro.New(nr.Mu3(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer m.Close()

	start := time.Now()
	res := m.Run(*duration)
	elapsed := time.Since(start)

	res.Write(os.Stdout)

	// Wall-clock throughput: UE-frames advanced per second of real time.
	// Host-dependent, so stderr only — stdout stays diffable.
	ueFrames := float64(res.ResidentUEs) * float64(res.Frames)
	fmt.Fprintf(os.Stderr, "mmmetro: %d workers, %.2fs wall, %.0f UEs/sec\n",
		m.Workers(), elapsed.Seconds(), ueFrames/elapsed.Seconds())
}
