// Command mmcluster runs the multi-cell CoMP cluster layer
// (internal/cluster): several gNB stations at distinct poses in one shared
// hall cooperatively serve a common UE population. Every UE holds a serving
// plus a hot-standby session (dual connectivity), wide-beam monitor probes
// rank the non-attached cells, and a frame-synchronous coordinator executes
// blockage-driven handovers with hysteresis and time-to-trigger.
//
// Usage:
//
//	mmcluster -cells 2 -ues 4 -blockage -duration 1
//	mmcluster -cells 4 -ues 32 -churn -blockage -workers 8
//	mmcluster -cells 3 -ues 8 -seed 7 -per-ue
//
// Every (UE, cell) pair replays its own deterministic world (seeded via
// seeds.Mix from -seed), all cross-cell decisions happen single-threaded at
// frame boundaries, and the output carries no wall-clock or host-dependent
// fields — so stdout is byte-identical for any -workers value. CI diffs
// -workers 1 against -workers 8 on a 4-cell churn+blockage run, and
// MMR_INCREMENTAL=off against the default incremental engine.
//
// -cpuprofile / -memprofile write pprof profiles of the run (see the README
// "Profiling the metro loop").
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"

	"mmreliable/internal/cluster"
	"mmreliable/internal/core"
	"mmreliable/internal/env"
	"mmreliable/internal/events"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

// nearestCell returns the index of the gNB pose closest to pos — the cell a
// blocker crossing the UE's initially serving link shadows.
func nearestCell(poses []env.Pose, pos env.Vec2) int {
	best, bestD := 0, math.Inf(1)
	for i, p := range poses {
		if d := p.Pos.Dist(pos); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func main() {
	cells := flag.Int("cells", 2, "number of cooperating gNB cells in the hall")
	ues := flag.Int("ues", 4, "number of UEs dropped on the hall lattice")
	duration := flag.Float64("duration", 0.5, "simulated duration in seconds (warmup included)")
	seed := flag.Int64("seed", 1, "base seed; per-pair streams are derived via seeds.Mix")
	workers := flag.Int("workers", 0, "worker goroutines per station (0 = GOMAXPROCS); output is identical for any value")
	budget := flag.Int("budget", cluster.DefaultConfig().Station.ProbeBudget, "per-cell probe grants per frame (0 = unlimited); monitor probes are charged against it")
	blockage := flag.Bool("blockage", false, "deep body blocker crossing each UE's nearest-cell link, onset staggered per UE")
	churn := flag.Bool("churn", false, "mid-run churn: every 4th UE attaches at 0.3×duration, every 5th detaches at 0.7×duration")
	perUE := flag.Bool("per-ue", false, "print the per-UE result table")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmcluster"))
		return
	}
	if err := core.CheckFlags("mmcluster",
		core.IntAtLeast("cells", *cells, 1),
		core.IntAtLeast("ues", *ues, 1),
		core.FloatPositive("duration", *duration),
		core.IntAtLeast("workers", *workers, 0),
		core.IntAtLeast("budget", *budget, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	e, poses := env.MultiCellHall(env.Band28GHz(), *cells)
	cfg := cluster.DefaultConfig()
	cfg.Seed = *seed
	cfg.Station.Workers = *workers
	cfg.Station.ProbeBudget = *budget
	cl, err := cluster.New(nr.Mu3(), cfg, cluster.Deployment{
		Env: e, Cells: poses, Budget: sim.IndoorBudget(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, pos := range env.HallUEPositions(*ues) {
		ucfg := cluster.UEConfig{Pos: pos}
		if *blockage {
			blk := make([]events.Schedule, *cells)
			depth := 35.0
			blk[nearestCell(poses, pos)] = events.Schedule{{
				AllPaths: true,
				Start:    (0.30 + 0.02*float64(i%7)) * *duration,
				Duration: 0.30 * *duration,
				DepthDB:  depth,
				RampTime: events.RampFor(depth),
			}}
			ucfg.Blockage = blk
		}
		if *churn {
			if i%4 == 3 {
				ucfg.AttachAt = 0.3 * *duration
			}
			if i%5 == 4 {
				ucfg.DetachAt = 0.7 * *duration
			}
		}
		if _, err := cl.AddUE(ucfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res := cl.Run(*duration)
	c := res.Counters

	fmt.Printf("cluster: %d cells, %d UEs, %.1f s, budget %d grants/frame/cell (seed %d)\n",
		*cells, *ues, *duration, *budget, *seed)
	fmt.Printf("frames %d  attached %d  finished %d  deferrals %d\n",
		c.Frames, c.UEsAttached, c.UEsFinished, c.AdmissionDeferrals)
	fmt.Printf("handovers %d  ping-pongs %d  standby-retargets %d  monitor rounds %d probes %d\n",
		c.Handovers, c.PingPongs, c.StandbyRetargets, c.MonitorRounds, c.MonitorProbes)
	fmt.Printf("serving reliability %s  diversity reliability %s  overhead %s%%\n",
		stats.Fmt(res.MeanServingReliability), stats.Fmt(res.MeanDiversityReliability),
		stats.Fmt(res.OverheadPct))
	fmt.Printf("serving max outage %s ms  diversity max outage %s ms  agg throughput %s / %s Mbps\n",
		stats.Fmt(res.MaxOutageMs), stats.Fmt(res.DivMaxOutageMs),
		stats.Fmt(res.AggThroughputBps/1e6), stats.Fmt(res.AggDiversityThroughputBps/1e6))

	if *perUE {
		table := stats.NewTable("per-UE results",
			"ue", "cell", "ho", "pp", "rel_serv", "rel_div", "snr_dB", "out_ms", "divout_ms")
		for _, u := range res.PerUE {
			table.AddRow(fmt.Sprintf("%03d", u.ID), fmt.Sprintf("%d", u.ServingCell),
				fmt.Sprintf("%d", u.Handovers), fmt.Sprintf("%d", u.PingPongs),
				stats.Fmt(u.Serving.Reliability), stats.Fmt(u.Diversity.Reliability),
				stats.Fmt(u.Serving.MeanSNRdB),
				stats.Fmt(u.MaxOutageMs), stats.Fmt(u.DivMaxOutageMs))
		}
		table.Render(os.Stdout)
	}
}
