package main

import (
	"reflect"
	"testing"
)

func TestParseResultsJSONSkipsUnderscoreKeys(t *testing.T) {
	in := []byte(`{
"BenchmarkX": {"iterations":5,"ns_per_op":123,"bytes_per_op":8,"allocs_per_op":1},
"_baseline": {"BenchmarkX": {"ns_per_op":999}},
"_cpu": "whatever"
}`)
	got, err := parseResults(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d results, want 1 (underscore keys skipped)", len(got))
	}
	r, ok := got["BenchmarkX"]
	if !ok || r.NsPerOp != 123 || r.AllocsPerOp == nil || *r.AllocsPerOp != 1 {
		t.Fatalf("BenchmarkX parsed wrong: %+v", r)
	}
}

// TestRegressedNoiseFloor pins the two-sided regression gate: a flagged
// regression must exceed BOTH the 15% fractional rule and the absolute
// 250 ns floor, so sub-microsecond benchmarks cannot regress on timer
// noise alone.
func TestRegressedNoiseFloor(t *testing.T) {
	cases := []struct {
		name     string
		old, new float64
		want     bool
	}{
		{"fast bench, 60% slower but only 60ns", 100, 160, false},
		{"fast bench, huge absolute growth", 100, 500, true},
		{"slow bench, 10% growth under frac gate", 1e6, 1.1e6, false},
		{"slow bench, 20% growth", 1e6, 1.2e6, true},
		{"borderline: >15% but exactly at floor", 1000, 1250, false},
		{"borderline: >15% and just over floor", 1000, 1251, true},
		{"zero old ns never regresses", 0, 1e9, false},
		{"improvement", 1e6, 5e5, false},
	}
	for _, c := range cases {
		if got := regressed(c.old, c.new); got != c.want {
			t.Errorf("%s: regressed(%g, %g) = %v want %v", c.name, c.old, c.new, got, c.want)
		}
	}
}

func TestParseResultsBenchText(t *testing.T) {
	in := []byte("goos: linux\nBenchmarkY-8   100   456 ns/op   32 B/op   2 allocs/op\nPASS\n")
	got, err := parseResults(in)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkY"]
	if !ok || r.NsPerOp != 456 || r.BytesPerOp == nil || *r.BytesPerOp != 32 {
		t.Fatalf("BenchmarkY parsed wrong: %+v (ok=%v)", r, ok)
	}
}

// TestCustomRegressions pins the direction-aware custom-metric gate: rate
// units (".../s", ".../sec") regress when they shrink past the noise floor,
// cost units when they grow past it; metrics absent from the new side are
// ignored.
func TestCustomRegressions(t *testing.T) {
	mk := func(m map[string]float64) Result { return Result{Custom: m} }
	cases := []struct {
		name     string
		old, new map[string]float64
		want     []string
	}{
		{"rate within noise", map[string]float64{"UEs/sec": 1000}, map[string]float64{"UEs/sec": 900}, nil},
		{"rate collapsed", map[string]float64{"UEs/sec": 1000}, map[string]float64{"UEs/sec": 600},
			[]string{"UEs/sec 1000 -> 600"}},
		{"rate improved", map[string]float64{"sessionslots/s": 1000}, map[string]float64{"sessionslots/s": 2000}, nil},
		{"cost grew", map[string]float64{"ns/sessionslot": 1000}, map[string]float64{"ns/sessionslot": 1500},
			[]string{"ns/sessionslot 1000 -> 1500"}},
		{"cost shrank", map[string]float64{"ns/sessionslot": 1000}, map[string]float64{"ns/sessionslot": 500}, nil},
		{"metric dropped from new side", map[string]float64{"UEs/sec": 1000}, nil, nil},
	}
	for _, c := range cases {
		got := customRegressions(mk(c.old), mk(c.new))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: customRegressions = %v want %v", c.name, got, c.want)
		}
	}
}

// TestParseLineCustomMetrics pins b.ReportMetric capture: units beyond the
// standard trio land in Custom keyed by the unit string, and survive a JSON
// round trip through parseResults.
func TestParseLineCustomMetrics(t *testing.T) {
	line := "BenchmarkMetroFrame-8   50   4127600 ns/op   3876.5 UEs/sec   0 B/op   0 allocs/op"
	name, r, ok := parseLine(line)
	if !ok || name != "BenchmarkMetroFrame" {
		t.Fatalf("parseLine failed: name=%q ok=%v", name, ok)
	}
	if r.NsPerOp != 4127600 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("standard metrics parsed wrong: %+v", r)
	}
	if v, ok := r.Custom["UEs/sec"]; !ok || v != 3876.5 {
		t.Fatalf("custom metric parsed wrong: %+v", r.Custom)
	}

	in := []byte(`{"BenchmarkMetroFrame": {"iterations":50,"ns_per_op":4127600,"custom":{"UEs/sec":3876.5}}}`)
	got, err := parseResults(in)
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkMetroFrame"].Custom["UEs/sec"]; v != 3876.5 {
		t.Fatalf("custom metric lost in JSON round trip: %+v", got)
	}
}
