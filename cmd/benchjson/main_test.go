package main

import "testing"

func TestParseResultsJSONSkipsUnderscoreKeys(t *testing.T) {
	in := []byte(`{
"BenchmarkX": {"iterations":5,"ns_per_op":123,"bytes_per_op":8,"allocs_per_op":1},
"_baseline": {"BenchmarkX": {"ns_per_op":999}},
"_cpu": "whatever"
}`)
	got, err := parseResults(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d results, want 1 (underscore keys skipped)", len(got))
	}
	r, ok := got["BenchmarkX"]
	if !ok || r.NsPerOp != 123 || r.AllocsPerOp == nil || *r.AllocsPerOp != 1 {
		t.Fatalf("BenchmarkX parsed wrong: %+v", r)
	}
}

func TestParseResultsBenchText(t *testing.T) {
	in := []byte("goos: linux\nBenchmarkY-8   100   456 ns/op   32 B/op   2 allocs/op\nPASS\n")
	got, err := parseResults(in)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkY"]
	if !ok || r.NsPerOp != 456 || r.BytesPerOp == nil || *r.BytesPerOp != 32 {
		t.Fatalf("BenchmarkY parsed wrong: %+v (ok=%v)", r, ok)
	}
}
