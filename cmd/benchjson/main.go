// Command benchjson converts `go test -bench` text output into a compact
// JSON map for machine comparison across commits:
//
//	go test -bench 'Probe|EffectiveWideband' -benchmem -run '^$' . | benchjson > BENCH_results.json
//
// Each benchmark line
//
//	BenchmarkProbe-8   41946   6089 ns/op   0 B/op   0 allocs/op
//
// becomes an entry keyed by the benchmark name with the -cpu suffix
// stripped:
//
//	"BenchmarkProbe": {"ns_per_op": 6089, "bytes_per_op": 0, "allocs_per_op": 0}
//
// Custom b.ReportMetric units (e.g. the metro layer's "UEs/sec" or the
// station's "sessionslots/s") are captured under a "custom" map keyed by
// the unit string, alongside the standard trio.
//
// Lines that are not benchmark results (headers, PASS/ok trailers, figure
// tables printed to stderr by the harness) are ignored, so the whole
// `go test -bench` stdout can be piped through unfiltered. Metadata fields
// (`_goos`, `_pkg`, ...) are copied from the harness preamble when present.
//
// Comparison mode flags regressions between two result sets:
//
//	go test -bench ... -benchmem -run '^$' . | benchjson -compare BENCH_results.json
//	benchjson -compare old.json new.json
//
// The new side is a positional file or stdin; stdin may be either a JSON
// map produced by this tool or raw `go test -bench` text (auto-detected).
// A benchmark regresses when its ns/op grows by more than 15% (shared-CI
// noise floor) AND by more than an absolute 250 ns floor — sub-microsecond
// benchmarks jitter by more than 15% on timer noise alone — or when its
// allocs/op increases at all. Custom b.ReportMetric units are compared
// too, with the same 15% noise floor: rate units ("UEs/sec",
// "sessionslots/s") regress when they SHRINK past the floor, cost units
// (everything else, e.g. "ns/sessionslot") when they grow. A slower
// new-side result sampled with fewer than 20 iterations is reported as
// "skip" rather than gated on — the same guard applies to custom-metric
// regressions. Metadata and archival keys (leading underscore, e.g.
// `_baseline`) are skipped. The report goes to stdout; with -strict a
// regression also makes the exit status 1, so CI can choose between an
// advisory report and a hard gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mmreliable/internal/core"
)

// Result is one benchmark's parsed metrics. Custom holds any
// b.ReportMetric units beyond the standard trio (e.g. "UEs/sec",
// "sessionslots/s"), keyed by the unit string verbatim.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

func main() {
	compare := flag.String("compare", "", "old BENCH_results.json to compare against; new results from a positional file or stdin")
	strict := flag.Bool("strict", false, "with -compare: exit 1 when a regression is flagged")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(core.Version("benchjson"))
		return
	}
	if err := core.CheckFlags("benchjson",
		core.FlagRequires("strict", *strict, "compare", *compare != ""),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *compare != "" {
		os.Exit(runCompare(*compare, flag.Arg(0), *strict))
	}
	meta := map[string]string{}
	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			meta["_goos"] = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			meta["_goarch"] = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			meta["_pkg"] = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			meta["_cpu"] = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		name, res, ok := parseLine(line)
		if ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := emit(os.Stdout, meta, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine extracts one benchmark result; ok is false for non-benchmark
// lines.
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	// Strip the -<GOMAXPROCS> suffix so keys are stable across machines.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	ok := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
				ok = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = &v
			}
		default:
			// b.ReportMetric custom unit (e.g. "UEs/sec"). Units are
			// non-numeric by construction, so a parseable value plus any
			// other unit string is a metric pair.
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if res.Custom == nil {
					res.Custom = map[string]float64{}
				}
				res.Custom[unit] = v
			}
		}
	}
	return name, res, ok
}

// emit writes metadata and results as one deterministic (sorted-key) JSON
// object.
func emit(w *os.File, meta map[string]string, results map[string]Result) error {
	out := map[string]any{}
	for k, v := range meta {
		out[k] = v
	}
	for k, v := range results {
		out[k] = v
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(out[k])
		if err != nil {
			return err
		}
		b.Write(kb)
		b.WriteString(": ")
		b.Write(vb)
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := w.WriteString(b.String())
	return err
}

// nsRegressionFrac is the ns/op growth tolerated before a comparison flags
// a regression: shared CI runners jitter by ~10%, so the gate sits at 15%.
const nsRegressionFrac = 0.15

// nsRegressionFloorNs is the absolute ns/op growth a benchmark must also
// exceed before it counts as a regression. Sub-microsecond benchmarks
// jitter by tens of nanoseconds on shared runners — far more than 15% of a
// 100 ns/op result — so the flat fractional rule alone flags pure timer
// noise. A real regression on such a benchmark still trips the gate once it
// costs more than this floor in absolute terms.
const nsRegressionFloorNs = 250.0

// minCompareIterations is the iteration count below which a new-side result
// is considered too poorly sampled to gate on: a handful of iterations
// (e.g. -benchtime 10x smoke runs) measures startup effects, not steady
// state. Such comparisons are reported as "skip" instead of regressing.
const minCompareIterations = 20

// regressed reports whether new ns/op is a flagged regression over old:
// both the fractional gate (nsRegressionFrac) and the absolute floor
// (nsRegressionFloorNs) must be exceeded.
func regressed(oldNs, newNs float64) bool {
	return oldNs > 0 &&
		newNs > oldNs*(1+nsRegressionFrac) &&
		newNs-oldNs > nsRegressionFloorNs
}

// higherIsBetter classifies a custom metric unit by direction: rate units
// ("UEs/sec", "sessionslots/s", anything per second) improve upward, cost
// units ("ns/sessionslot") improve downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec")
}

// customRegressions returns the custom metrics of old that regressed in new
// (direction-aware, same fractional noise floor as ns/op; metrics missing
// from the new side are ignored — a changed benchmark simply stops
// reporting them).
func customRegressions(old, new Result) []string {
	var out []string
	for unit, ov := range old.Custom {
		nv, ok := new.Custom[unit]
		if !ok || ov == 0 {
			continue
		}
		if higherIsBetter(unit) {
			if nv < ov*(1-nsRegressionFrac) {
				out = append(out, fmt.Sprintf("%s %.5g -> %.5g", unit, ov, nv))
			}
		} else if nv > ov*(1+nsRegressionFrac) {
			out = append(out, fmt.Sprintf("%s %.5g -> %.5g", unit, ov, nv))
		}
	}
	sort.Strings(out)
	return out
}

// runCompare loads the old results from oldPath and the new results from
// newPath (or stdin when empty), prints a comparison report, and returns
// the process exit code: 1 when strict and at least one benchmark
// regressed, 0 otherwise.
func runCompare(oldPath, newPath string, strict bool) int {
	oldRes, err := loadResultsFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var newBytes []byte
	if newPath != "" {
		newBytes, err = os.ReadFile(newPath)
	} else {
		newBytes, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newRes, err := parseResults(newBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Printf("MISSING  %s: present in old results only\n", name)
			continue
		}
		ratio := 0.0
		if o.NsPerOp > 0 {
			ratio = n.NsPerOp / o.NsPerOp
		}
		slower := regressed(o.NsPerOp, n.NsPerOp)
		moreAllocs := o.AllocsPerOp != nil && n.AllocsPerOp != nil && *n.AllocsPerOp > *o.AllocsPerOp
		customBad := customRegressions(o, n)
		underSampled := n.Iterations > 0 && n.Iterations < minCompareIterations
		switch {
		case (slower || len(customBad) > 0) && underSampled && !moreAllocs:
			// Too few iterations to trust the timing; don't gate on it.
			fmt.Printf("skip     %-36s %12.0f -> %12.0f ns/op (%.2fx, only %d iterations)\n",
				name, o.NsPerOp, n.NsPerOp, ratio, n.Iterations)
		case slower || moreAllocs || len(customBad) > 0:
			regressions++
			detail := ""
			if moreAllocs {
				detail = fmt.Sprintf("  allocs %d -> %d", *o.AllocsPerOp, *n.AllocsPerOp)
			}
			for _, c := range customBad {
				detail += "  " + c
			}
			fmt.Printf("REGRESS  %-36s %12.0f -> %12.0f ns/op (%.2fx)%s\n",
				name, o.NsPerOp, n.NsPerOp, ratio, detail)
		case o.NsPerOp > 0 && n.NsPerOp < o.NsPerOp*(1-nsRegressionFrac):
			fmt.Printf("IMPROVE  %-36s %12.0f -> %12.0f ns/op (%.2fx)\n",
				name, o.NsPerOp, n.NsPerOp, ratio)
		default:
			fmt.Printf("ok       %-36s %12.0f -> %12.0f ns/op (%.2fx)\n",
				name, o.NsPerOp, n.NsPerOp, ratio)
		}
	}
	if regressions > 0 {
		fmt.Printf("%d regression(s) (>%.0f%% and >%.0f ns/op, any allocs/op increase, or a >%.0f%% custom-metric move the wrong way)\n",
			regressions, nsRegressionFrac*100, nsRegressionFloorNs, nsRegressionFrac*100)
		if strict {
			return 1
		}
		return 0
	}
	fmt.Println("no regressions")
	return 0
}

// loadResultsFile reads one benchmark-result set from a file.
func loadResultsFile(path string) (map[string]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseResults(b)
}

// parseResults decodes a result set from either the JSON map this tool
// emits or raw `go test -bench` text (detected by the leading byte).
// Metadata and archival keys — anything starting with "_", such as the
// `_baseline` snapshots kept in the committed BENCH_results.json — are
// skipped.
func parseResults(b []byte) (map[string]Result, error) {
	trimmed := bytes.TrimSpace(b)
	out := map[string]Result{}
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(trimmed, &raw); err != nil {
			return nil, fmt.Errorf("parsing results JSON: %w", err)
		}
		for k, v := range raw {
			if strings.HasPrefix(k, "_") {
				continue
			}
			var r Result
			if err := json.Unmarshal(v, &r); err != nil {
				return nil, fmt.Errorf("parsing result %q: %w", k, err)
			}
			out[k] = r
		}
		return out, nil
	}
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, res, ok := parseLine(sc.Text()); ok {
			out[name] = res
		}
	}
	return out, sc.Err()
}
