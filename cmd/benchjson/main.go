// Command benchjson converts `go test -bench` text output into a compact
// JSON map for machine comparison across commits:
//
//	go test -bench 'Probe|EffectiveWideband' -benchmem -run '^$' . | benchjson > BENCH_results.json
//
// Each benchmark line
//
//	BenchmarkProbe-8   41946   6089 ns/op   0 B/op   0 allocs/op
//
// becomes an entry keyed by the benchmark name with the -cpu suffix
// stripped:
//
//	"BenchmarkProbe": {"ns_per_op": 6089, "bytes_per_op": 0, "allocs_per_op": 0}
//
// Lines that are not benchmark results (headers, PASS/ok trailers, figure
// tables printed to stderr by the harness) are ignored, so the whole
// `go test -bench` stdout can be piped through unfiltered. Metadata fields
// (`_goos`, `_pkg`, ...) are copied from the harness preamble when present.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

func main() {
	meta := map[string]string{}
	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			meta["_goos"] = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			meta["_goarch"] = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			meta["_pkg"] = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			meta["_cpu"] = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		name, res, ok := parseLine(line)
		if ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := emit(os.Stdout, meta, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine extracts one benchmark result; ok is false for non-benchmark
// lines.
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	// Strip the -<GOMAXPROCS> suffix so keys are stable across machines.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	ok := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
				ok = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = &v
			}
		}
	}
	return name, res, ok
}

// emit writes metadata and results as one deterministic (sorted-key) JSON
// object.
func emit(w *os.File, meta map[string]string, results map[string]Result) error {
	out := map[string]any{}
	for k, v := range meta {
		out[k] = v
	}
	for k, v := range results {
		out[k] = v
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(out[k])
		if err != nil {
			return err
		}
		b.Write(kb)
		b.WriteString(": ")
		b.Write(vb)
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := w.WriteString(b.String())
	return err
}
