// Command mmtrace inspects the workload generators: it prints the ray-traced
// path structure of a scenario over time and its blockage schedule, which is
// useful when designing new experiments.
//
// Usage:
//
//	mmtrace -scenario outdoor -seed 3 -steps 6
//	mmtrace -scenario indoor-mobile
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mmreliable/internal/core"
	"mmreliable/internal/dsp"
	"mmreliable/internal/sim"
)

func main() {
	scenario := flag.String("scenario", "indoor", "indoor | indoor-mobile | outdoor | walking-blocker | small-spread | rotating-ue")
	seed := flag.Int64("seed", 1, "random seed")
	steps := flag.Int("steps", 5, "time samples across the scenario duration")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmtrace"))
		return
	}
	if err := core.CheckFlags("mmtrace",
		core.IntAtLeast("steps", *steps, 1),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sc, budget, err := sim.Named(*scenario, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scenario %s, seed %d, duration %.2f s, %d-element gNB array\n",
		*scenario, *seed, sc.Duration, sc.TxArray.N)
	if sc.UEArray != nil {
		fmt.Printf("directional UE: %d elements\n", sc.UEArray.N)
	}
	fmt.Printf("budget: %.1f dBm TX, noise floor %.1f dBm\n\n", budget.TxPowerDBm, budget.NoiseFloorDBm())

	denom := float64(*steps - 1)
	if *steps <= 1 {
		denom = 1
	}
	for i := 0; i < *steps; i++ {
		t := sc.Duration * float64(i) / denom
		m := sc.ChannelAt(t)
		fmt.Printf("t=%.3f s: %d paths\n", t, len(m.Paths))
		arrayGain := math.Sqrt(float64(sc.TxArray.N))
		for k, p := range m.Paths {
			kind := "LOS"
			if p.Refl > 0 {
				kind = fmt.Sprintf("refl(wall %d)", p.Via)
			}
			// Single matched beam on this path, current extra loss applied.
			heff := p.Amplitude() * arrayGain * math.Pow(10, -p.ExtraLossDB/20)
			fmt.Printf("  path %d %-12s AoD=%6.1f°  delay=%6.2f ns  loss=%6.1f dB  extra=%5.1f dB  single-beam SNR≈%5.1f dB\n",
				k, kind, dsp.Deg(p.AoD), p.Delay*1e9, p.LossDB, p.ExtraLossDB, budget.SNRdB(heff))
		}
	}
	if len(sc.Blockage) > 0 {
		fmt.Println("\nblockage schedule:")
		for _, e := range sc.Blockage.Sorted() {
			target := fmt.Sprintf("path %d", e.PathIndex)
			if e.AllPaths {
				target = "all paths"
			}
			fmt.Printf("  %-9s t=%.3f–%.3f s  depth %.0f dB  ramp %.1f ms\n",
				target, e.Start, e.End(), e.DepthDB, e.RampTime*1e3)
		}
	}
}
