// Command mmhybrid runs the hybrid multi-panel SDMA serving engine: the
// mmstation runner (internal/station/stationcli) with the interference-aware
// slot-sharing tier (internal/hybrid) switched on by default — 4 RF chains
// over a population of static UEs fanned across a ±40° arc, so the greedy
// angular-separation planner has distinct angles of departure to group.
//
// Usage:
//
//	mmhybrid -ues 8
//	mmhybrid -ues 16 -chains 2 -duration 1
//	mmhybrid -ues 8 -chains 1              # single-beam TDMA baseline
//	MMR_HYBRID=off mmhybrid -scenario mixed ...   # ≡ mmstation, byte-for-byte
//
// All determinism contracts carry over: stdout is byte-identical for any
// -workers value, and with MMR_HYBRID=off (or -chains 0) the output is
// exactly what mmstation prints for the same flags — the CI oracle diff.
package main

import (
	"flag"
	"fmt"
	"os"

	"mmreliable/internal/core"
	"mmreliable/internal/station"
	"mmreliable/internal/station/stationcli"
)

func main() {
	def := station.DefaultConfig()
	sdmaDef := station.DefaultSDMAConfig(4)
	ues := flag.Int("ues", 8, "number of UE sessions to attach")
	scenario := flag.String("scenario", "spread", stationcli.Scenarios)
	budget := flag.Int("budget", def.ProbeBudget, "probe grants per frame across all sessions (0 = unlimited, every session self-schedules)")
	frameMS := flag.Float64("frame-ms", def.FramePeriod*1e3, "scheduling frame period in milliseconds")
	duration := flag.Float64("duration", 0.5, "simulated duration in seconds (warmup included)")
	seed := flag.Int64("seed", 1, "base seed; per-session streams are derived via seeds.Mix")
	workers := flag.Int("workers", 0, "worker goroutines stepping sessions (0 = GOMAXPROCS); output is identical for any value")
	maxSessions := flag.Int("max-sessions", def.MaxSessions, "admission-control cap on concurrently attached sessions")
	churn := flag.Bool("churn", false, "mid-run churn: every 4th UE attaches at 0.3×duration, every 5th detaches at 0.7×duration")
	perUE := flag.Bool("per-ue", false, "print the per-UE result table")
	chains := flag.Int("chains", sdmaDef.Chains, "hybrid RF chains: max UEs per shared slot (0 = legacy dedicated airtime, 1 = single-beam TDMA baseline)")
	sdmaSep := flag.Float64("sdma-sep", sdmaDef.MinSeparationDeg, "minimum tracked-AoD separation in degrees between co-scheduled UEs")
	sdmaMinSINR := flag.Float64("sdma-min-sinr", sdmaDef.MinSINRdB, "minimum predicted SINR in dB for every member of a candidate group")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmhybrid"))
		return
	}
	if err := core.CheckFlags("mmhybrid",
		core.IntAtLeast("ues", *ues, 1),
		core.IntAtLeast("budget", *budget, 0),
		core.FloatPositive("frame-ms", *frameMS),
		core.FloatPositive("duration", *duration),
		core.IntAtLeast("workers", *workers, 0),
		core.IntAtLeast("max-sessions", *maxSessions, 0),
		core.IntAtLeast("chains", *chains, 0),
		core.FloatAtLeast("sdma-sep", *sdmaSep, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := stationcli.Options{
		UEs:         *ues,
		Scenario:    *scenario,
		Budget:      *budget,
		FrameMS:     *frameMS,
		Duration:    *duration,
		Seed:        *seed,
		Workers:     *workers,
		MaxSessions: *maxSessions,
		Churn:       *churn,
		PerUE:       *perUE,
		SDMA: station.SDMAConfig{
			Chains:           *chains,
			MinSeparationDeg: *sdmaSep,
			MinSINRdB:        *sdmaMinSINR,
		},
	}
	if err := stationcli.Run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
