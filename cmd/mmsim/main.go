// Command mmsim runs one end-to-end mmWave link simulation and prints the
// per-scheme reliability/throughput summary (optionally a per-slot trace).
//
// Usage:
//
//	mmsim -scenario outdoor -schemes mmreliable,reactive,widebeam
//	mmsim -scenario indoor -duration 2 -seed 7 -trace
//	mmsim -scenario rotating-ue -schemes mmreliable,reactive
//
// Scenarios: indoor (static conference room), indoor-mobile (translation +
// blocker), outdoor (thin-margin street canyon with mobility + blockage),
// walking-blocker (Fig. 16), small-spread (combining regime, mobile),
// rotating-ue (directional UE at 24°/s).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

func main() {
	scenario := flag.String("scenario", "indoor", "indoor | indoor-mobile | outdoor | walking-blocker | small-spread | rotating-ue")
	schemes := flag.String("schemes", "mmreliable,reactive", "comma-separated: mmreliable, reactive, beamspy, widebeam, oracle")
	seed := flag.Int64("seed", 1, "random seed")
	duration := flag.Float64("duration", 1.0, "measured duration in seconds")
	trace := flag.Bool("trace", false, "print a per-slot SNR trace (decimated)")
	flag.Parse()

	sc, budget, err := sim.Named(*scenario, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sc.Duration = *duration

	u := func() *antenna.ULA { return antenna.NewULA(8, 28e9) }
	var list []sim.Scheme
	for _, name := range strings.Split(*schemes, ",") {
		name = strings.TrimSpace(name)
		var s sim.Scheme
		var err error
		switch name {
		case "mmreliable":
			s, err = manager.New("mmreliable", u(), budget, nr.Mu3(), manager.DefaultConfig(), rand.New(rand.NewSource(*seed)))
		case "reactive":
			s, err = baselines.NewSingleBeamReactive(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(*seed)))
		case "beamspy":
			s, err = baselines.NewBeamSpy(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(*seed)))
		case "widebeam":
			s, err = baselines.NewWideBeam(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(*seed)))
		case "oracle":
			s = baselines.NewOracle(budget, 64)
		default:
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", name)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		list = append(list, s)
	}

	runner := sim.Runner{KeepSeries: *trace, Warmup: sim.StandardWarmup}
	out, err := runner.Run(sc, list...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	table := stats.NewTable(fmt.Sprintf("scenario %s (seed %d, %.1f s)", *scenario, *seed, *duration),
		"scheme", "reliability", "thr_Mbps", "snr_dB", "trp_Mbps", "outages")
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := out[n].Summary
		table.AddRow(n, stats.Fmt(s.Reliability), stats.Fmt(s.MeanThroughput/1e6),
			stats.Fmt(s.MeanSNRdB), stats.Fmt(s.TRProduct/1e6), fmt.Sprintf("%d", s.OutageEvents))
	}
	table.Render(os.Stdout)

	if *trace {
		for _, n := range names {
			res := out[n]
			fmt.Printf("\n-- %s slot trace (every 40th slot) --\n", n)
			for i := range res.Series {
				if i%40 == 0 {
					state := "data"
					if res.Series[i].Training {
						state = "train"
					}
					fmt.Printf("t=%.4f snr=%6.2f dB  %s\n", res.Times[i], res.Series[i].SNRdB, state)
				}
			}
		}
	}
}
