// Command mmsim runs one end-to-end mmWave link simulation and prints the
// per-scheme reliability/throughput summary (optionally a per-slot trace).
//
// Usage:
//
//	mmsim -scenario outdoor -schemes mmreliable,reactive,widebeam
//	mmsim -scenario indoor -duration 2 -seed 7 -trace
//	mmsim -scenario rotating-ue -schemes mmreliable,reactive
//	mmsim -scenario outdoor -schemes mmreliable,reactive,beamspy,widebeam -workers 4
//
// Scenarios: indoor (static conference room), indoor-mobile (translation +
// blocker), outdoor (thin-margin street canyon with mobility + blockage),
// walking-blocker (Fig. 16), small-spread (combining regime, mobile),
// rotating-ue (directional UE at 24°/s).
//
// Each scheme replays its own deterministic instance of the scenario
// (scenarios are pure functions of the seed), so -workers > 1 runs the
// schemes concurrently with byte-identical output.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mmreliable/internal/antenna"
	"mmreliable/internal/baselines"
	"mmreliable/internal/core"
	"mmreliable/internal/core/manager"
	"mmreliable/internal/nr"
	"mmreliable/internal/sim"
	"mmreliable/internal/stats"
)

func main() {
	scenario := flag.String("scenario", "indoor", "indoor | indoor-mobile | outdoor | walking-blocker | small-spread | rotating-ue")
	schemes := flag.String("schemes", "mmreliable,reactive", "comma-separated: mmreliable, reactive, beamspy, widebeam, oracle")
	seed := flag.Int64("seed", 1, "random seed")
	duration := flag.Float64("duration", 1.0, "measured duration in seconds")
	trace := flag.Bool("trace", false, "print a per-slot SNR trace (decimated)")
	workers := flag.Int("workers", 0, "concurrent scheme replays (0 = GOMAXPROCS); output is identical for any value")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmsim"))
		return
	}
	if err := core.CheckFlags("mmsim",
		core.FloatPositive("duration", *duration),
		core.IntAtLeast("workers", *workers, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Validate the scenario name (and fetch the budget) once up front.
	_, budget, err := sim.Named(*scenario, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	u := func() *antenna.ULA { return antenna.NewULA(8, 28e9) }
	names := []string{}
	for _, name := range strings.Split(*schemes, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	mkScheme := func(name string) (sim.Scheme, error) {
		switch name {
		case "mmreliable":
			return manager.New("mmreliable", u(), budget, nr.Mu3(), manager.DefaultConfig(), rand.New(rand.NewSource(*seed)))
		case "reactive":
			return baselines.NewSingleBeamReactive(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(*seed)))
		case "beamspy":
			return baselines.NewBeamSpy(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(*seed)))
		case "widebeam":
			return baselines.NewWideBeam(u(), budget, nr.Mu3(), baselines.DefaultOptions(), rand.New(rand.NewSource(*seed)))
		case "oracle":
			return baselines.NewOracle(budget, 64), nil
		default:
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
	}
	// Validate scheme names up front so bad -schemes fail before any replay.
	valid := map[string]bool{"mmreliable": true, "reactive": true, "beamspy": true, "widebeam": true, "oracle": true}
	for _, name := range names {
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", name)
			os.Exit(1)
		}
	}

	// Replay the scenario once per scheme, sharded across the worker pool.
	// Every replay rebuilds the scenario from the seed, so each scheme sees
	// identical channel realizations and the output does not depend on the
	// worker count.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(names) {
		w = len(names)
	}
	results := make([]map[string]sim.Result, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, w)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc, _, err := sim.Named(*scenario, *seed)
			if err != nil {
				errs[i] = err
				return
			}
			sc.Duration = *duration
			s, err := mkScheme(name)
			if err != nil {
				errs[i] = err
				return
			}
			runner := sim.Runner{KeepSeries: *trace, Warmup: sim.StandardWarmup}
			results[i], errs[i] = runner.Run(sc, s)
		}(i, name)
	}
	wg.Wait()

	out := map[string]sim.Result{}
	for i := range names {
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, errs[i])
			os.Exit(1)
		}
		for n, r := range results[i] {
			out[n] = r
		}
	}

	table := stats.NewTable(fmt.Sprintf("scenario %s (seed %d, %.1f s)", *scenario, *seed, *duration),
		"scheme", "reliability", "thr_Mbps", "snr_dB", "trp_Mbps", "outages")
	sorted := make([]string, 0, len(out))
	for n := range out {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		s := out[n].Summary
		table.AddRow(n, stats.Fmt(s.Reliability), stats.Fmt(s.MeanThroughput/1e6),
			stats.Fmt(s.MeanSNRdB), stats.Fmt(s.TRProduct/1e6), fmt.Sprintf("%d", s.OutageEvents))
	}
	table.Render(os.Stdout)

	if *trace {
		for _, n := range sorted {
			res := out[n]
			fmt.Printf("\n-- %s slot trace (every 40th slot) --\n", n)
			for i := range res.Series {
				if i%40 == 0 {
					state := "data"
					if res.Series[i].Training {
						state = "train"
					}
					fmt.Printf("t=%.4f snr=%6.2f dB  %s\n", res.Times[i], res.Series[i].SNRdB, state)
				}
			}
		}
	}
}
