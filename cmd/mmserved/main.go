// Command mmserved is the long-running service daemon (internal/serve): it
// owns a city-scale metro simulation, advances it continuously — paced to
// wall-clock or as fast as possible — and exposes an HTTP/JSON control
// plane for live telemetry, event injection, knob hot-reload, and
// deterministic snapshot/restore.
//
// Usage:
//
//	mmserved -clusters 8 -frames 200 -status-every 10
//	mmserved -listen :8080 -timescale 1
//	mmserved -frames 100 -snapshot state.json
//	mmserved -restore state.json -frames 200
//
// The per-frame status lines on stdout are byte-identical at any -workers
// value, and a run that is stopped, snapshotted, and restored in a fresh
// process emits exactly the lines the uninterrupted run would have — CI
// diffs both. Wall-clock throughput goes to stderr so it never perturbs
// the diff.
//
// Control plane (all state exchanges happen at frame boundaries):
//
//	GET  /status          boundary-time daemon state (JSON)
//	GET  /metrics         Prometheus text exposition, O(sites)
//	POST /ue/attach       {"site":0,"x":3.5,"y":1.25,"duration_s":5}
//	POST /ue/detach       {"site":0,"ue":2}
//	POST /event/blockage  {"site":0,"ue":0,"depth_db":25,"duration_s":0.05}
//	POST /config          cluster tuning knobs, validated atomically
//	POST /snapshot        versioned snapshot document (response body)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmreliable/internal/core"
	"mmreliable/internal/metro"
	"mmreliable/internal/serve"
)

func main() {
	def := metro.DefaultConfig()
	clusters := flag.Int("clusters", def.Clusters, "number of independent cluster sites in the city")
	cells := flag.Int("cells", def.CellsPerCluster, "gNB cells per site")
	ues := flag.Int("ues", def.UEsPerCluster, "initial UEs per site")
	seed := flag.Int64("seed", 1, "base seed; per-site streams are derived via seeds.Mix")
	workers := flag.Int("workers", 0, "shard-pool workers (0 = GOMAXPROCS); output is identical for any value")
	shards := flag.Int("shards", 0, "shard count (0 = default 64); part of the determinism contract")
	churn := flag.Float64("churn", def.ChurnArrivalRate, "session arrivals per second per site (0 disables churn)")
	session := flag.Float64("session", def.MeanSessionS, "mean session length in seconds (exponential dwell)")
	mobile := flag.Float64("mobile", def.MobileFraction, "fraction of UEs that pace the hall at walking speed")
	speed := flag.Float64("speed", def.SpeedMPS, "mobile-UE walking speed in m/s (0 = 1.4)")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = run until signaled)")
	statusEvery := flag.Int("status-every", 1, "emit a deterministic status line every N frames (0 = off)")
	timescale := flag.Float64("timescale", 0, "simulated seconds per wall second (1 = real time, 0 = as fast as possible)")
	listen := flag.String("listen", "", "serve the HTTP control plane on this address (empty = no HTTP)")
	snapshotPath := flag.String("snapshot", "", "write a snapshot document to this file at exit")
	restorePath := flag.String("restore", "", "restore from this snapshot instead of a fresh metro (metro sizing flags are ignored)")
	demoScript := flag.String("demo-script", "", "run the built-in deterministic event script (any non-empty value enables; used by the CI kill-and-restore diff)")
	showVersion := flag.Bool("version", false, "print version/build info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(core.Version("mmserved"))
		return
	}
	if err := core.CheckFlags("mmserved",
		core.IntAtLeast("clusters", *clusters, 1),
		core.IntAtLeast("cells", *cells, 1),
		core.IntAtLeast("ues", *ues, 0),
		core.IntAtLeast("workers", *workers, 0),
		core.IntAtLeast("shards", *shards, 0),
		core.FloatAtLeast("churn", *churn, 0),
		core.FloatPositive("session", *session),
		core.FloatInRange("mobile", *mobile, 0, 1),
		core.FloatAtLeast("speed", *speed, 0),
		core.IntAtLeast("frames", *frames, 0),
		core.IntAtLeast("status-every", *statusEvery, 0),
		core.FloatAtLeast("timescale", *timescale, 0),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var s *serve.Server
	if *restorePath != "" {
		blob, err := os.ReadFile(*restorePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmserved:", err)
			os.Exit(1)
		}
		s, err = serve.Restore(blob, serve.Runtime{
			TimeScale:   *timescale,
			StatusEvery: *statusEvery,
			MaxFrames:   *frames,
			Workers:     *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmserved:", err)
			os.Exit(1)
		}
	} else {
		mc := def
		mc.Seed = *seed
		mc.Clusters = *clusters
		mc.CellsPerCluster = *cells
		mc.UEsPerCluster = *ues
		mc.Workers = *workers
		mc.Shards = *shards
		mc.ChurnArrivalRate = *churn
		mc.MeanSessionS = *session
		mc.MobileFraction = *mobile
		mc.SpeedMPS = *speed
		cfg := serve.Config{
			Metro:       mc,
			TimeScale:   *timescale,
			StatusEvery: *statusEvery,
			MaxFrames:   *frames,
		}
		if *demoScript != "" {
			cfg.Script = serve.DemoScript()
		}
		var err error
		s, err = serve.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmserved:", err)
			os.Exit(1)
		}
	}
	defer s.Close()
	s.SetStatusWriter(os.Stdout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var httpSrv *http.Server
	if *listen != "" {
		httpSrv = &http.Server{Addr: *listen, Handler: s.Handler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "mmserved:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "mmserved: control plane on %s\n", *listen)
	}

	start := time.Now()
	startFrame := s.Frame()
	if err := s.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mmserved:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		httpSrv.Shutdown(shutCtx)
		cancel()
	}
	if *snapshotPath != "" {
		blob, err := s.SnapshotJSONDirect()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmserved:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*snapshotPath, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mmserved:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mmserved: snapshot at frame %d written to %s\n", s.Frame(), *snapshotPath)
	}
	if n := s.ScriptErrs(); n > 0 {
		fmt.Fprintf(os.Stderr, "mmserved: %d scripted commands failed to apply\n", n)
	}
	fmt.Fprintf(os.Stderr, "mmserved: %d frames in %.2fs wall (%.0f frames/sec)\n",
		s.Frame()-startFrame, elapsed.Seconds(),
		float64(s.Frame()-startFrame)/elapsed.Seconds())
}
